//! Symmetric INT8 tensors with power-of-two scales.
//!
//! The Xilinx DPU represents every tensor as `real = int8 * 2^(-fix_pos)`
//! where `fix_pos` is the "fix position" chosen at quantisation time. All
//! rescaling then reduces to arithmetic shifts — this module implements that
//! arithmetic exactly so the functional DPU executor bit-matches what a real
//! compiled xmodel would produce.

use crate::shape::Shape4;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Weight bitwidth of a quantised kernel. Activations stay INT8 throughout
/// (the DPU datapath is 8-bit); `W4` narrows only the weights, i.e. W4A8.
///
/// A `W4` tensor still travels as `i8` values — confined to `[-8, 7]` — in a
/// [`QTensor`]; the nibble packing (two weights per byte) happens only in the
/// pre-packed GEMM panels, so every unpacked code path executes mixed graphs
/// unchanged and bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bitwidth {
    /// 8-bit weights (the paper's baseline: W8A8).
    W8,
    /// 4-bit weights, 8-bit activations (W4A8).
    W4,
}

impl Bitwidth {
    /// Bits per weight.
    pub fn bits(self) -> u32 {
        match self {
            Bitwidth::W8 => 8,
            Bitwidth::W4 => 4,
        }
    }

    /// Largest representable quantised value.
    pub fn max_q(self) -> i32 {
        match self {
            Bitwidth::W8 => 127,
            Bitwidth::W4 => 7,
        }
    }

    /// Smallest representable quantised value.
    pub fn min_q(self) -> i32 {
        match self {
            Bitwidth::W8 => -128,
            Bitwidth::W4 => -8,
        }
    }
}

/// A quantised NCHW tensor: `real = data[i] * 2^(-fix_pos)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QTensor {
    shape: Shape4,
    data: Vec<i8>,
    fix_pos: i32,
}

impl QTensor {
    /// Wraps a raw buffer.
    pub fn from_vec(shape: Shape4, data: Vec<i8>, fix_pos: i32) -> Self {
        assert_eq!(data.len(), shape.len(), "buffer/shape mismatch");
        Self { shape, data, fix_pos }
    }

    /// A zeroed quantised tensor.
    pub fn zeros(shape: Shape4, fix_pos: i32) -> Self {
        Self { shape, data: vec![0; shape.len()], fix_pos }
    }

    /// Shape accessor.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Fix position (`real = int * 2^(-fix_pos)`).
    pub fn fix_pos(&self) -> i32 {
        self.fix_pos
    }

    /// Raw INT8 buffer.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn data_mut(&mut self) -> &mut [i8] {
        &mut self.data
    }

    /// Quantises an `f32` tensor at the given fix position
    /// (round-to-nearest-even, saturating to `[-128, 127]`).
    pub fn quantize(t: &Tensor, fix_pos: i32) -> Self {
        Self::quantize_bits(t, fix_pos, Bitwidth::W8)
    }

    /// [`QTensor::quantize`] saturating to the given bitwidth's range
    /// (`[-8, 7]` for `W4`). The result is still stored as `i8`.
    pub fn quantize_bits(t: &Tensor, fix_pos: i32, bits: Bitwidth) -> Self {
        let scale = (fix_pos as f32).exp2();
        let (lo, hi) = (bits.min_q() as f32, bits.max_q() as f32);
        let data = t
            .data()
            .iter()
            .map(|&v| {
                let q = (v * scale).round_ties_even();
                q.clamp(lo, hi) as i8
            })
            .collect();
        Self { shape: t.shape(), data, fix_pos }
    }

    /// Reconstructs the `f32` tensor.
    pub fn dequantize(&self) -> Tensor {
        let scale = (-self.fix_pos as f32).exp2();
        Tensor::from_vec(self.shape, self.data.iter().map(|&v| v as f32 * scale).collect())
    }

    /// Worst-case absolute quantisation error at this fix position (half ULP),
    /// ignoring saturation.
    pub fn quantum(&self) -> f32 {
        (-self.fix_pos as f32).exp2() * 0.5
    }
}

/// A borrowed quantised tensor: shape and fix position over a slice of a
/// larger INT8 buffer (the planned executor's slot arena). Valid only until
/// the arena runs another frame; copy out with [`QTensorView::to_qtensor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QTensorView<'a> {
    shape: Shape4,
    data: &'a [i8],
    fix_pos: i32,
}

impl<'a> QTensorView<'a> {
    /// Wraps a raw slice. Panics if the slice length mismatches the shape.
    pub fn new(shape: Shape4, data: &'a [i8], fix_pos: i32) -> Self {
        assert_eq!(data.len(), shape.len(), "view buffer/shape mismatch");
        Self { shape, data, fix_pos }
    }

    /// Shape accessor.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Fix position (`real = int * 2^(-fix_pos)`).
    pub fn fix_pos(&self) -> i32 {
        self.fix_pos
    }

    /// Raw INT8 buffer.
    pub fn data(&self) -> &'a [i8] {
        self.data
    }

    /// Copies the view into an owning [`QTensor`].
    pub fn to_qtensor(&self) -> QTensor {
        QTensor::from_vec(self.shape, self.data.to_vec(), self.fix_pos)
    }

    /// Reconstructs the `f32` tensor (see [`QTensor::dequantize`]).
    pub fn dequantize(&self) -> Tensor {
        let scale = (-self.fix_pos as f32).exp2();
        Tensor::from_vec(self.shape, self.data.iter().map(|&v| v as f32 * scale).collect())
    }
}

/// Picks the largest fix position such that `abs_max` still fits in INT8,
/// i.e. `abs_max * 2^fp <= 127`. An `abs_max` of zero maps to the maximum
/// useful position for activations (15).
pub fn choose_fix_pos(abs_max: f32) -> i32 {
    choose_fix_pos_bits(abs_max, Bitwidth::W8)
}

/// [`choose_fix_pos`] for an arbitrary weight bitwidth: the largest fix
/// position such that `abs_max * 2^fp <= max_q(bits)` (7 for `W4`).
pub fn choose_fix_pos_bits(abs_max: f32, bits: Bitwidth) -> i32 {
    if abs_max <= 0.0 || !abs_max.is_finite() {
        return 15;
    }
    let fp = (bits.max_q() as f32 / abs_max).log2().floor() as i32;
    fp.clamp(-16, 15)
}

/// Requantises a 32-bit accumulator to INT8 with a right shift of `shift`
/// bits (round-half-away-from-zero, saturating) — the DPU's rescale step.
/// Negative `shift` left-shifts.
#[inline]
pub fn requantize_i32(acc: i32, shift: i32) -> i8 {
    let v: i64 = if shift > 0 {
        let acc = acc as i64;
        let half = 1i64 << (shift - 1);
        // Round half away from zero.
        if acc >= 0 {
            (acc + half) >> shift
        } else {
            -((-acc + half) >> shift)
        }
    } else {
        (acc as i64) << (-shift)
    };
    v.clamp(i8::MIN as i64, i8::MAX as i64) as i8
}

/// Requantises a whole accumulator buffer into an existing `i8` buffer.
pub fn requantize_slice(acc: &[i32], shift: i32, out: &mut [i8]) {
    assert_eq!(acc.len(), out.len());
    for (o, &a) in out.iter_mut().zip(acc) {
        *o = requantize_i32(a, shift);
    }
}

/// INT8 2x2 stride-2 max pool on raw NCHW slices. Returns the output shape.
///
/// The max of INT8 values at one fix position is exact — no requantisation —
/// so the output keeps the input's fix position (the caller's bookkeeping).
pub fn maxpool2x2_i8(xs: Shape4, x: &[i8], out: &mut [i8]) -> Shape4 {
    let out_shape = xs.pooled2x2();
    assert_eq!(x.len(), xs.len(), "qmaxpool input buffer/shape mismatch");
    assert_eq!(out.len(), out_shape.len(), "qmaxpool output buffer size");
    let (ho, wo) = (out_shape.h, out_shape.w);
    for plane in 0..xs.n * xs.c {
        let x_plane = &x[plane * xs.hw()..(plane + 1) * xs.hw()];
        for oy in 0..ho {
            for ox in 0..wo {
                let v = x_plane[2 * oy * xs.w + 2 * ox]
                    .max(x_plane[2 * oy * xs.w + 2 * ox + 1])
                    .max(x_plane[(2 * oy + 1) * xs.w + 2 * ox])
                    .max(x_plane[(2 * oy + 1) * xs.w + 2 * ox + 1]);
                out[plane * ho * wo + oy * wo + ox] = v;
            }
        }
    }
    out_shape
}

/// INT8 channel concat with per-input alignment shifts on raw NCHW slices:
/// each input is requantised (arithmetic shift, [`requantize_i32`]) onto the
/// common output fix position as it is copied. Returns the output shape.
#[allow(clippy::too_many_arguments)]
pub fn concat_requant_i8(
    sa: Shape4,
    a: &[i8],
    sb: Shape4,
    b: &[i8],
    shift_a: i32,
    shift_b: i32,
    out: &mut [i8],
) -> Shape4 {
    assert_eq!((sa.n, sa.h, sa.w), (sb.n, sb.h, sb.w), "qconcat geometry");
    assert_eq!(a.len(), sa.len(), "qconcat first input buffer/shape mismatch");
    assert_eq!(b.len(), sb.len(), "qconcat second input buffer/shape mismatch");
    let out_shape = Shape4::new(sa.n, sa.c + sb.c, sa.h, sa.w);
    assert_eq!(out.len(), out_shape.len(), "qconcat output buffer size");
    let hw = sa.hw();
    for n in 0..sa.n {
        let dst = n * out_shape.chw();
        for (i, &v) in a[n * sa.chw()..(n + 1) * sa.chw()].iter().enumerate() {
            out[dst + i] = requantize_i32(v as i32, shift_a);
        }
        for (i, &v) in b[n * sb.chw()..(n + 1) * sb.chw()].iter().enumerate() {
            out[dst + sa.c * hw + i] = requantize_i32(v as i32, shift_b);
        }
    }
    out_shape
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_roundtrip_error_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = Shape4::new(1, 2, 8, 8);
        let t = Tensor::from_vec(s, (0..s.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let fp = choose_fix_pos(t.abs_max());
        let q = QTensor::quantize(&t, fp);
        let d = q.dequantize();
        let quantum = q.quantum();
        for (a, b) in t.data().iter().zip(d.data()) {
            assert!((a - b).abs() <= quantum + 1e-6, "{a} vs {b} (quantum {quantum})");
        }
    }

    #[test]
    fn choose_fix_pos_covers_range() {
        // abs_max 1.0 -> 2^6 * 1.0 = 64 <= 127, 2^7 = 128 > 127 => fp = 6.
        assert_eq!(choose_fix_pos(1.0), 6);
        // Larger values need smaller (possibly negative) positions.
        assert_eq!(choose_fix_pos(127.0), 0);
        assert_eq!(choose_fix_pos(254.0), -1);
        // Tiny values saturate at 15.
        assert_eq!(choose_fix_pos(1e-9), 15);
        assert_eq!(choose_fix_pos(0.0), 15);
    }

    #[test]
    fn choose_fix_pos_never_saturates_abs_max() {
        for &m in &[0.1f32, 0.5, 0.99, 1.0, 3.7, 100.0, 1000.0] {
            let fp = choose_fix_pos(m);
            assert!(m * (fp as f32).exp2() <= 127.0 + 1e-3, "abs_max {m} fp {fp}");
            // And the next position up would overflow (within clamp range).
            if fp < 15 {
                assert!(m * ((fp + 1) as f32).exp2() > 127.0, "fp not maximal for {m}");
            }
        }
    }

    #[test]
    fn requantize_rounds_half_away_from_zero() {
        assert_eq!(requantize_i32(3, 1), 2); // 1.5 -> 2
        assert_eq!(requantize_i32(-3, 1), -2); // -1.5 -> -2
        assert_eq!(requantize_i32(5, 1), 3); // 2.5 -> 3
        assert_eq!(requantize_i32(4, 2), 1);
        assert_eq!(requantize_i32(100, 0), 100);
    }

    #[test]
    fn requantize_saturates() {
        assert_eq!(requantize_i32(1 << 20, 4), 127);
        assert_eq!(requantize_i32(-(1 << 20), 4), -128);
        assert_eq!(requantize_i32(100, -2), 127); // left shift overflow saturates
    }

    #[test]
    fn saturation_on_quantize() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, 3), vec![100.0, -100.0, 0.5]);
        let q = QTensor::quantize(&t, 3); // scale 8 -> 800 saturates
        assert_eq!(q.data(), &[127, -128, 4]);
    }

    #[test]
    fn choose_fix_pos_bits_w4_covers_range() {
        // abs_max 1.0 -> 2^2 * 1.0 = 4 <= 7, 2^3 = 8 > 7 => fp = 2.
        assert_eq!(choose_fix_pos_bits(1.0, Bitwidth::W4), 2);
        assert_eq!(choose_fix_pos_bits(7.0, Bitwidth::W4), 0);
        assert_eq!(choose_fix_pos_bits(14.0, Bitwidth::W4), -1);
        assert_eq!(choose_fix_pos_bits(0.0, Bitwidth::W4), 15);
        // W8 must agree with the original helper.
        for &m in &[0.1f32, 1.0, 3.7, 100.0] {
            assert_eq!(choose_fix_pos_bits(m, Bitwidth::W8), choose_fix_pos(m));
        }
    }

    #[test]
    fn quantize_bits_w4_saturates_to_nibble_range() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![100.0, -100.0, 0.5, -0.5]);
        let q = QTensor::quantize_bits(&t, 3, Bitwidth::W4); // scale 8
        assert_eq!(q.data(), &[7, -8, 4, -4]);
        // Every W4 value fits in one signed nibble.
        for &v in q.data() {
            assert!((-8..=7).contains(&(v as i32)));
        }
    }

    #[test]
    fn quantize_is_round_to_nearest_even() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![0.5, 1.5, 2.5, -0.5]);
        let q = QTensor::quantize(&t, 0);
        assert_eq!(q.data(), &[0, 2, 2, 0]);
    }
}
