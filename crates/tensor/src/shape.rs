//! Four-dimensional NCHW shapes and index arithmetic.

use serde::{Deserialize, Serialize};

/// The shape of a rank-4 tensor in `(batch, channels, height, width)` order.
///
/// All kernels in this crate assume a dense row-major NCHW layout, i.e. the
/// linear index of element `(n, c, h, w)` is
/// `((n * C + c) * H + h) * W + w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape4 {
    /// Batch size.
    pub n: usize,
    /// Channel count.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape4 {
    /// Creates a new shape.
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// True when the shape contains no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of elements in one batch item (`C*H*W`).
    pub const fn chw(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Number of elements in one channel plane (`H*W`).
    pub const fn hw(&self) -> usize {
        self.h * self.w
    }

    /// Linear index of `(n, c, h, w)`.
    #[inline(always)]
    pub const fn idx(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Returns the shape with a different batch size.
    pub const fn with_n(&self, n: usize) -> Self {
        Self { n, ..*self }
    }

    /// Returns the shape with a different channel count.
    pub const fn with_c(&self, c: usize) -> Self {
        Self { c, ..*self }
    }

    /// Shape after a 2x2/stride-2 max-pool (floor semantics).
    pub const fn pooled2x2(&self) -> Self {
        Self { n: self.n, c: self.c, h: self.h / 2, w: self.w / 2 }
    }

    /// Shape after a 2x2/stride-2 transpose convolution (doubles H and W).
    pub const fn upsampled2x2(&self) -> Self {
        Self { n: self.n, c: self.c, h: self.h * 2, w: self.w * 2 }
    }
}

impl std::fmt::Display for Shape4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}x{}x{}x{}]", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_is_row_major_nchw() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.idx(0, 0, 0, 0), 0);
        assert_eq!(s.idx(0, 0, 0, 1), 1);
        assert_eq!(s.idx(0, 0, 1, 0), 5);
        assert_eq!(s.idx(0, 1, 0, 0), 20);
        assert_eq!(s.idx(1, 0, 0, 0), 60);
        assert_eq!(s.idx(1, 2, 3, 4), s.len() - 1);
    }

    #[test]
    fn len_and_helpers() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.chw(), 60);
        assert_eq!(s.hw(), 20);
        assert!(!s.is_empty());
        assert!(Shape4::new(0, 3, 4, 5).is_empty());
    }

    #[test]
    fn pool_and_upsample_shapes_invert() {
        let s = Shape4::new(1, 8, 64, 64);
        assert_eq!(s.pooled2x2().upsampled2x2(), s);
        let odd = Shape4::new(1, 8, 65, 65);
        assert_eq!(odd.pooled2x2(), Shape4::new(1, 8, 32, 32));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape4::new(1, 2, 3, 4).to_string(), "[1x2x3x4]");
    }
}
