//! Implicit-GEMM convolution: im2col fused into the panel pack.
//!
//! The classic lowering materializes the `[C*K*K, H_out*W_out]` column
//! matrix (9x the activation footprint for 3x3), then re-reads it to pack
//! the GEMM `B` panels — two full passes of memory traffic per conv per
//! frame that exist only to rearrange data. The entry points here skip the
//! intermediate entirely: [`pack_b_im2col`] computes the im2col index math
//! *inside* the tile gather, packing `NR`-wide activation panels directly
//! from the NCHW feature map (zero-fill for padding), so the packed panels
//! hold byte-for-byte what `im2col` + `pack_b` would have produced and every
//! kernel downstream is untouched — the implicit route is bit-identical to
//! the materialized one by construction.
//!
//! The 2x2 stride-2 transpose convolution gets the dual treatment on the
//! *store* side: its input plane already is the column matrix (no gather
//! needed), but the classic lowering materializes a `[4*C_out, H*W]`
//! pre-scatter buffer and then re-reads it to scatter into the `[C_out,
//! 2H, 2W]` output. With the repacked weights ordered co-major (row
//! `co*4 + kidx`, see `repack_tconv_weights`), an `MC = 32`-row GEMM block
//! corresponds to exactly 8 whole output planes, so the scatter folds into
//! the tile store and the pre-scatter buffer disappears.
//!
//! The training backward pass deliberately keeps explicit `im2col`/`col2im`:
//! it needs the column matrix as a *GEMM operand in its own right*
//! (`dW = dY * col^T`), not merely as a staging layout, so there is no
//! redundant pass to remove there.

use crate::gemm::{
    block_driver_f32, i4_block_requant, i8_block_requant, pack_a, pack_b, packed_a_len,
    packed_b_len, run_f32_blocks, GemmEpilogue, PackedA, PackedA4, Tile, MC, MR, NR, PACK_F32,
    PACK_I8,
};
use crate::im2col::ConvGeom;
use crate::quantized::requantize_i32;
use crate::zero::Zero;
use rayon::prelude::*;

/// Packs the virtual im2col matrix of one `[C, H, W]` input plane straight
/// into `NR`-wide k-major `B` panels — the fusion of `im2col` and `pack_b`.
///
/// Row `kk` of the virtual matrix decomposes as `(c, ky, kx)`; column `j`
/// as `(oy, ox)`; the source pixel is `(oy*stride + ky - pad,
/// ox*stride + kx - pad)`, with out-of-bounds positions contributing
/// `T::ZERO` (the pre-`fill` covers them, plus the zero padding of the tail
/// panel's missing columns). Stride 1 copies contiguous row segments;
/// larger strides gather per element. The panel bytes are identical to
/// `im2col` followed by `pack_b`, so implicit and materialized GEMMs are
/// bit-exact for every dtype.
pub fn pack_b_im2col<T: Zero + Send + Sync>(geom: &ConvGeom, input: &[T], buf: &mut [T]) {
    let n = geom.h_out() * geom.w_out();
    let k = geom.col_rows();
    assert_eq!(input.len(), geom.c_in * geom.h * geom.w, "input size");
    assert!(buf.len() >= packed_b_len(k, n), "panel buffer size");
    let n_panels = n.div_ceil(NR);
    let panels = &mut buf[..n_panels * NR * k];
    // Panels are disjoint, so the gather parallelizes trivially. The
    // threshold keeps tiny convs serial; deep-k shapes (where a serial pack
    // would dominate the whole conv, since the materialized route hides the
    // same traffic inside a parallel im2col pass) fan out across panels.
    if n_panels > 1 && n_panels * NR * k >= (1 << 15) {
        panels
            .par_chunks_mut(NR * k)
            .enumerate()
            .for_each(|(jp, panel)| pack_b_im2col_panel(geom, input, n, jp, panel));
    } else {
        for (jp, panel) in panels.chunks_mut(NR * k).enumerate() {
            pack_b_im2col_panel(geom, input, n, jp, panel);
        }
    }
}

/// Gathers one `NR`-wide k-major panel (columns `jp*NR ..` of the virtual
/// im2col matrix) straight from the `[C, H, W]` plane.
fn pack_b_im2col_panel<T: Zero>(
    geom: &ConvGeom,
    input: &[T],
    n: usize,
    jp: usize,
    panel: &mut [T],
) {
    let w_out = geom.w_out();
    let kk_sz = geom.k * geom.k;
    let hw = geom.h * geom.w;
    let j0 = jp * NR;
    let cols = NR.min(n - j0);
    for (kk, dst) in panel.chunks_exact_mut(NR).enumerate() {
        let c = kk / kk_sz;
        let rem = kk % kk_sz;
        let (ky, kx) = (rem / geom.k, rem % geom.k);
        let plane = &input[c * hw..(c + 1) * hw];
        // Zero-fill once: covers padded pixels and the tail panel's
        // missing columns; in-bounds pixels overwrite below.
        dst.fill(T::ZERO);
        let mut jj = 0;
        while jj < cols {
            let j = j0 + jj;
            let (oy, ox0) = (j / w_out, j % w_out);
            // Columns jj..jj+seg share the output row oy.
            let seg = (w_out - ox0).min(cols - jj);
            let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
            if iy >= 0 && iy < geom.h as isize {
                let src_row = &plane[iy as usize * geom.w..][..geom.w];
                let ix0 = (ox0 * geom.stride + kx) as isize - geom.pad as isize;
                if geom.stride == 1 {
                    // Contiguous segment: clip [lo, hi) to the input row.
                    let lo = (-ix0).max(0) as usize;
                    let hi = (geom.w as isize - ix0).clamp(0, seg as isize) as usize;
                    if lo < hi {
                        dst[jj + lo..jj + hi]
                            .copy_from_slice(&src_row[(ix0 + lo as isize) as usize..][..hi - lo]);
                    }
                } else {
                    for (t, d) in dst[jj..jj + seg].iter_mut().enumerate() {
                        let ix = ix0 + (t * geom.stride) as isize;
                        if ix >= 0 && ix < geom.w as isize {
                            *d = src_row[ix as usize];
                        }
                    }
                }
            }
            jj += seg;
        }
    }
}

/// Implicit-GEMM f32 convolution of one `[C, H, W]` image: `c = w * im2col(x)`
/// with the column matrix never materialized. `w` is the row-major
/// `[m, C*K*K]` weight matrix; `c` is `[m, H_out*W_out]`.
pub fn sgemm_conv(
    m: usize,
    w: &[f32],
    geom: &ConvGeom,
    x: &[f32],
    c: &mut [f32],
    epi: GemmEpilogue<'_>,
) {
    let (k, n) = (geom.col_rows(), geom.col_cols());
    assert_eq!(w.len(), m * k, "A size");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_F32.with(|cell| {
        let (pa, pb) = &mut *cell.borrow_mut();
        let (la, lb) = (packed_a_len(m, k), packed_b_len(k, n));
        if pa.len() < la {
            pa.resize(la, 0.0);
        }
        if pb.len() < lb {
            pb.resize(lb, 0.0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", ((la + lb) * 4) as u64);
            pack_a(m, k, |i, kk| w[i * k + kk], &mut pa[..la]);
            pack_b_im2col(geom, x, &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n * 4) as u64);
        run_f32_blocks(k, n, &pa[..la], &pb[..lb], c, epi);
    });
}

/// [`sgemm_conv`] with a pre-packed weight operand: the per-call pack work
/// is only the implicit activation panels.
pub fn sgemm_conv_packed(
    pa: &PackedA<f32>,
    geom: &ConvGeom,
    x: &[f32],
    c: &mut [f32],
    epi: GemmEpilogue<'_>,
) {
    let (m, k) = (pa.m(), pa.k());
    let n = geom.col_cols();
    assert_eq!(k, geom.col_rows(), "packed A k extent vs conv geometry");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_F32.with(|cell| {
        let (_, pb) = &mut *cell.borrow_mut();
        let lb = packed_b_len(k, n);
        if pb.len() < lb {
            pb.resize(lb, 0.0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", (lb * 4) as u64);
            pack_b_im2col(geom, x, &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n * 4) as u64);
        run_f32_blocks(k, n, &pa.panels, &pb[..lb], c, epi);
    });
}

/// Implicit-GEMM INT8 convolution of one `[C, H, W]` image with the fused
/// requantise-clamp epilogue. Bit-identical to `im2col_i8` + `igemm_fused`.
#[allow(clippy::too_many_arguments)]
pub fn igemm_conv(
    m: usize,
    w: &[i8],
    geom: &ConvGeom,
    x: &[i8],
    bias: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) {
    let (k, n) = (geom.col_rows(), geom.col_cols());
    assert_eq!(w.len(), m * k, "A size");
    assert_eq!(out.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_I8.with(|cell| {
        let (pa, pb) = &mut *cell.borrow_mut();
        let (la, lb) = (packed_a_len(m, k), packed_b_len(k, n));
        if pa.len() < la {
            pa.resize(la, 0);
        }
        if pb.len() < lb {
            pb.resize(lb, 0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", (la + lb) as u64);
            pack_a(m, k, |i, kk| w[i * k + kk], &mut pa[..la]);
            pack_b_im2col(geom, x, &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n) as u64);
        let (pas, pbs) = (&pa[..la], &pb[..lb]);
        out.par_chunks_mut(MC * n).enumerate().for_each(|(blk, out_blk)| {
            i8_block_requant(k, n, blk * MC, pas, pbs, out_blk, bias, shift, relu);
        });
    });
}

/// [`igemm_conv`] with a pre-packed INT8 weight operand.
pub fn igemm_conv_packed(
    pa: &PackedA<i8>,
    geom: &ConvGeom,
    x: &[i8],
    bias: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) {
    let (m, k) = (pa.m(), pa.k());
    let n = geom.col_cols();
    assert_eq!(k, geom.col_rows(), "packed A k extent vs conv geometry");
    assert_eq!(out.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_I8.with(|cell| {
        let (_, pb) = &mut *cell.borrow_mut();
        let lb = packed_b_len(k, n);
        if pb.len() < lb {
            pb.resize(lb, 0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", lb as u64);
            pack_b_im2col(geom, x, &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n) as u64);
        let pbs = &pb[..lb];
        out.par_chunks_mut(MC * n).enumerate().for_each(|(blk, out_blk)| {
            i8_block_requant(k, n, blk * MC, &pa.panels, pbs, out_blk, bias, shift, relu);
        });
    });
}

/// [`igemm_conv_packed`] for a nibble-packed INT4 weight operand: the weight
/// panels stream at half the bytes.
pub fn igemm4_conv_packed(
    pa: &PackedA4,
    geom: &ConvGeom,
    x: &[i8],
    bias: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) {
    let (m, k) = (pa.m(), pa.k());
    let n = geom.col_cols();
    assert_eq!(k, geom.col_rows(), "packed A k extent vs conv geometry");
    assert_eq!(out.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_I8.with(|cell| {
        let (_, pb) = &mut *cell.borrow_mut();
        let lb = packed_b_len(k, n);
        if pb.len() < lb {
            pb.resize(lb, 0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", lb as u64);
            pack_b_im2col(geom, x, &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n) as u64);
        let pbs = &pb[..lb];
        out.par_chunks_mut(MC * n).enumerate().for_each(|(blk, out_blk)| {
            i4_block_requant(k, n, blk * MC, &pa.panels, pbs, out_blk, bias, shift, relu);
        });
    });
}

/// The scatter-fused f32 tile store for the 2x2 stride-2 transpose conv:
/// GEMM row `co*4 + kidx`, column `iy*w + ix` lands at `(2iy+ky, 2ix+kx)` of
/// output plane `co`. `c` is the whole `[C_out, 2H, 2W]` output; because the
/// repacked weights are co-major and `MC` is a multiple of 4, every
/// `MC`-row block covers whole output planes and the parallel split stays
/// race-free.
fn run_f32_tconv_blocks(
    k: usize,
    hw: usize,
    w: usize,
    pa: &[f32],
    pb: &[f32],
    bias4: &[f32],
    out: &mut [f32],
) {
    let has_bias = !bias4.is_empty();
    let ow = 2 * w;
    let store = move |acc: &[[f32; NR]; MR], c_blk: &mut [f32], t: Tile| {
        for ii in 0..t.rows {
            let row = t.row + ii;
            let (ky, kx) = ((row % 4) / 2, row % 2);
            let plane = &mut c_blk[((t.ip0 + ii) / 4) * (4 * hw)..][..4 * hw];
            if has_bias {
                let bias = bias4.get(row).copied().unwrap_or(0.0);
                for (tc, &v) in acc[ii][..t.cols].iter().enumerate() {
                    let j = t.j0 + tc;
                    let (iy, ix) = (j / w, j % w);
                    plane[(2 * iy + ky) * ow + 2 * ix + kx] = v + bias;
                }
            } else {
                for (tc, &v) in acc[ii][..t.cols].iter().enumerate() {
                    let j = t.j0 + tc;
                    let (iy, ix) = (j / w, j % w);
                    plane[(2 * iy + ky) * ow + 2 * ix + kx] = v;
                }
            }
        }
    };
    block_driver_f32(k, hw, pa, pb, out, store);
}

/// Scatter-fused f32 transpose conv of one `[C_in, H, W]` image: one GEMM of
/// the co-major `[4*C_out, C_in]` repacked weights `wk` against the input
/// plane (which already is the column matrix), with the stride-2 scatter
/// applied at tile-store time — no pre-scatter buffer. `bias4` is the
/// `i / 4`-replicated bias (empty to skip). `out` is `[C_out, 2H, 2W]`.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_tconv2x2(
    c_out: usize,
    c_in: usize,
    wk: &[f32],
    x: &[f32],
    h: usize,
    w: usize,
    bias4: &[f32],
    out: &mut [f32],
) {
    let (m, k, n) = (4 * c_out, c_in, h * w);
    assert_eq!(wk.len(), m * k, "repacked weight size");
    assert_eq!(x.len(), k * n, "input plane size");
    assert_eq!(out.len(), m * n, "output plane size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_F32.with(|cell| {
        let (pa, pb) = &mut *cell.borrow_mut();
        let (la, lb) = (packed_a_len(m, k), packed_b_len(k, n));
        if pa.len() < la {
            pa.resize(la, 0.0);
        }
        if pb.len() < lb {
            pb.resize(lb, 0.0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", ((la + lb) * 4) as u64);
            pack_a(m, k, |i, kk| wk[i * k + kk], &mut pa[..la]);
            pack_b(k, n, |kk, j| x[kk * n + j], &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n * 4) as u64);
        run_f32_tconv_blocks(k, n, w, &pa[..la], &pb[..lb], bias4, out);
    });
}

/// [`sgemm_tconv2x2`] with pre-packed (co-major) weights.
pub fn sgemm_tconv2x2_packed(
    pa: &PackedA<f32>,
    x: &[f32],
    h: usize,
    w: usize,
    bias4: &[f32],
    out: &mut [f32],
) {
    let (m, k) = (pa.m(), pa.k());
    let n = h * w;
    assert!(m.is_multiple_of(4), "tconv GEMM rows come in kidx quadruples");
    assert_eq!(x.len(), k * n, "input plane size");
    assert_eq!(out.len(), m * n, "output plane size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_F32.with(|cell| {
        let (_, pb) = &mut *cell.borrow_mut();
        let lb = packed_b_len(k, n);
        if pb.len() < lb {
            pb.resize(lb, 0.0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", (lb * 4) as u64);
            pack_b(k, n, |kk, j| x[kk * n + j], &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n * 4) as u64);
        run_f32_tconv_blocks(k, n, w, &pa.panels, &pb[..lb], bias4, out);
    });
}

/// One `MC`-row block of the INT8 tconv GEMM with the stride-2 scatter and
/// the requantise-clamp epilogue fused into the tile store. The MAC loop
/// mirrors `i8_block_requant` exactly (same ascending-`k` order, so results
/// are bit-identical to GEMM-then-scatter); only the store addresses differ.
/// Standalone `#[inline(never)]` for the same autovectorization reason as
/// the other INT8 blocks (see `block_driver_f32`).
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn i8_block_scatter2x2(
    k: usize,
    n: usize,
    w: usize,
    row0: usize,
    pa: &[i8],
    pb: &[i8],
    c_blk: &mut [i8],
    bias: &[i32],
    shift: i32,
    relu: bool,
) {
    let rows_blk = c_blk.len() / n;
    let n_jp = n.div_ceil(NR);
    let ow = 2 * w;
    let mut ip0 = 0;
    while ip0 < rows_blk {
        let tile_rows = MR.min(rows_blk - ip0);
        let apanel = &pa[(row0 + ip0) / MR * (MR * k)..][..MR * k];
        for jp in 0..n_jp {
            let j0 = jp * NR;
            let cols = NR.min(n - j0);
            let bpanel = &pb[jp * (NR * k)..][..NR * k];
            let mut acc = [[0i32; NR]; MR];
            for (a, b) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
                let mut bw = [0i32; NR];
                for (wv, &v) in bw.iter_mut().zip(b) {
                    *wv = v as i32;
                }
                for (i, acc_i) in acc.iter_mut().enumerate() {
                    let ai = a[i] as i32;
                    for (acc_ij, &bv) in acc_i.iter_mut().zip(&bw) {
                        *acc_ij += ai * bv;
                    }
                }
            }
            for ii in 0..tile_rows {
                let row = row0 + ip0 + ii;
                let (ky, kx) = ((row % 4) / 2, row % 2);
                let plane = &mut c_blk[((ip0 + ii) / 4) * (4 * n)..][..4 * n];
                let bi = bias.get(row).copied().unwrap_or(0);
                for (tc, &v) in acc[ii][..cols].iter().enumerate() {
                    let j = j0 + tc;
                    let (iy, ix) = (j / w, j % w);
                    let mut q = requantize_i32(v + bi, shift);
                    if relu && q < 0 {
                        q = 0;
                    }
                    plane[(2 * iy + ky) * ow + 2 * ix + kx] = q;
                }
            }
        }
        ip0 += MR;
    }
}

/// The INT4-weight twin of [`i8_block_scatter2x2`]: nibble-packed `A`
/// panels, identical MAC order and scatter store.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn i4_block_scatter2x2(
    k: usize,
    n: usize,
    w: usize,
    row0: usize,
    pa: &[u8],
    pb: &[i8],
    c_blk: &mut [i8],
    bias: &[i32],
    shift: i32,
    relu: bool,
) {
    const MR2: usize = MR / 2;
    let rows_blk = c_blk.len() / n;
    let n_jp = n.div_ceil(NR);
    let ow = 2 * w;
    let mut ip0 = 0;
    while ip0 < rows_blk {
        let tile_rows = MR.min(rows_blk - ip0);
        let apanel = &pa[(row0 + ip0) / MR * (MR2 * k)..][..MR2 * k];
        for jp in 0..n_jp {
            let j0 = jp * NR;
            let cols = NR.min(n - j0);
            let bpanel = &pb[jp * (NR * k)..][..NR * k];
            let mut acc = [[0i32; NR]; MR];
            for (a, b) in apanel.chunks_exact(MR2).zip(bpanel.chunks_exact(NR)) {
                let mut bw = [0i32; NR];
                for (wv, &v) in bw.iter_mut().zip(b) {
                    *wv = v as i32;
                }
                let mut aw = [0i32; MR];
                for (j, &byte) in a.iter().enumerate() {
                    aw[2 * j] = (((byte as i8) << 4) >> 4) as i32;
                    aw[2 * j + 1] = ((byte as i8) >> 4) as i32;
                }
                for (i, acc_i) in acc.iter_mut().enumerate() {
                    let ai = aw[i];
                    for (acc_ij, &bv) in acc_i.iter_mut().zip(&bw) {
                        *acc_ij += ai * bv;
                    }
                }
            }
            for ii in 0..tile_rows {
                let row = row0 + ip0 + ii;
                let (ky, kx) = ((row % 4) / 2, row % 2);
                let plane = &mut c_blk[((ip0 + ii) / 4) * (4 * n)..][..4 * n];
                let bi = bias.get(row).copied().unwrap_or(0);
                for (tc, &v) in acc[ii][..cols].iter().enumerate() {
                    let j = j0 + tc;
                    let (iy, ix) = (j / w, j % w);
                    let mut q = requantize_i32(v + bi, shift);
                    if relu && q < 0 {
                        q = 0;
                    }
                    plane[(2 * iy + ky) * ow + 2 * ix + kx] = q;
                }
            }
        }
        ip0 += MR;
    }
}

/// Scatter-fused INT8 transpose conv of one `[C_in, H, W]` image with the
/// fused requantise-clamp epilogue; the co-major `[4*C_out, C_in]` repacked
/// weights `wk` are packed per call. `out` is `[C_out, 2H, 2W]`.
#[allow(clippy::too_many_arguments)]
pub fn igemm_tconv2x2(
    c_out: usize,
    c_in: usize,
    wk: &[i8],
    x: &[i8],
    h: usize,
    w: usize,
    bias4: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) {
    let (m, k, n) = (4 * c_out, c_in, h * w);
    assert_eq!(wk.len(), m * k, "repacked weight size");
    assert_eq!(x.len(), k * n, "input plane size");
    assert_eq!(out.len(), m * n, "output plane size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_I8.with(|cell| {
        let (pa, pb) = &mut *cell.borrow_mut();
        let (la, lb) = (packed_a_len(m, k), packed_b_len(k, n));
        if pa.len() < la {
            pa.resize(la, 0);
        }
        if pb.len() < lb {
            pb.resize(lb, 0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", (la + lb) as u64);
            pack_a(m, k, |i, kk| wk[i * k + kk], &mut pa[..la]);
            pack_b(k, n, |kk, j| x[kk * n + j], &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n) as u64);
        let (pas, pbs) = (&pa[..la], &pb[..lb]);
        out.par_chunks_mut(MC * n).enumerate().for_each(|(blk, out_blk)| {
            i8_block_scatter2x2(k, n, w, blk * MC, pas, pbs, out_blk, bias4, shift, relu);
        });
    });
}

/// [`igemm_tconv2x2`] with pre-packed (co-major) INT8 weights.
#[allow(clippy::too_many_arguments)]
pub fn igemm_tconv2x2_packed(
    pa: &PackedA<i8>,
    x: &[i8],
    h: usize,
    w: usize,
    bias4: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) {
    let (m, k) = (pa.m(), pa.k());
    let n = h * w;
    assert!(m.is_multiple_of(4), "tconv GEMM rows come in kidx quadruples");
    assert_eq!(x.len(), k * n, "input plane size");
    assert_eq!(out.len(), m * n, "output plane size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_I8.with(|cell| {
        let (_, pb) = &mut *cell.borrow_mut();
        let lb = packed_b_len(k, n);
        if pb.len() < lb {
            pb.resize(lb, 0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", lb as u64);
            pack_b(k, n, |kk, j| x[kk * n + j], &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n) as u64);
        let pbs = &pb[..lb];
        out.par_chunks_mut(MC * n).enumerate().for_each(|(blk, out_blk)| {
            i8_block_scatter2x2(k, n, w, blk * MC, &pa.panels, pbs, out_blk, bias4, shift, relu);
        });
    });
}

/// [`igemm_tconv2x2_packed`] for nibble-packed INT4 weights.
#[allow(clippy::too_many_arguments)]
pub fn igemm4_tconv2x2_packed(
    pa: &PackedA4,
    x: &[i8],
    h: usize,
    w: usize,
    bias4: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) {
    let (m, k) = (pa.m(), pa.k());
    let n = h * w;
    assert!(m.is_multiple_of(4), "tconv GEMM rows come in kidx quadruples");
    assert_eq!(x.len(), k * n, "input plane size");
    assert_eq!(out.len(), m * n, "output plane size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_I8.with(|cell| {
        let (_, pb) = &mut *cell.borrow_mut();
        let lb = packed_b_len(k, n);
        if pb.len() < lb {
            pb.resize(lb, 0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", lb as u64);
            pack_b(k, n, |kk, j| x[kk * n + j], &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n) as u64);
        let pbs = &pb[..lb];
        out.par_chunks_mut(MC * n).enumerate().for_each(|(blk, out_blk)| {
            i4_block_scatter2x2(k, n, w, blk * MC, &pa.panels, pbs, out_blk, bias4, shift, relu);
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{igemm_fused, sgemm_fused};
    use crate::im2col::{im2col, im2col_i8};
    use rand::{Rng, SeedableRng};

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn rand_i8(len: usize, seed: u64) -> Vec<i8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-128i32..128) as i8).collect()
    }

    /// The defining property: the implicit pack must produce the same panel
    /// bytes as materialize-then-pack, for every geometry.
    #[test]
    fn implicit_pack_matches_materialized_pack() {
        for &(c, h, w, kk, pad, stride) in &[
            (3usize, 7usize, 5usize, 3usize, 1usize, 1usize),
            (2, 8, 8, 3, 1, 2),
            (1, 4, 9, 2, 0, 2),
            (4, 6, 6, 1, 0, 1),
            (2, 5, 5, 3, 0, 1),
        ] {
            let geom = ConvGeom { c_in: c, h, w, k: kk, pad, stride };
            let x = rand_vec(c * h * w, 7);
            let (k_dim, n) = (geom.col_rows(), geom.col_cols());
            let mut col = vec![0.0f32; k_dim * n];
            im2col(&geom, &x, &mut col);
            let lb = packed_b_len(k_dim, n);
            let mut pb_ref = vec![0.0f32; lb];
            pack_b(k_dim, n, |kk2, j| col[kk2 * n + j], &mut pb_ref);
            let mut pb = vec![0.0f32; lb];
            pack_b_im2col(&geom, &x, &mut pb);
            assert_eq!(pb, pb_ref, "geom {geom:?}");
        }
    }

    #[test]
    fn implicit_i8_conv_matches_materialized() {
        let geom = ConvGeom { c_in: 3, h: 9, w: 7, k: 3, pad: 1, stride: 1 };
        let m = 5;
        let x = rand_i8(geom.c_in * geom.h * geom.w, 8);
        let w = rand_i8(m * geom.col_rows(), 9);
        let bias: Vec<i32> = (0..m as i32).map(|i| i * 17 - 30).collect();
        let (k_dim, n) = (geom.col_rows(), geom.col_cols());
        let mut col = vec![0i8; k_dim * n];
        im2col_i8(&geom, &x, &mut col);
        let mut expect = vec![0i8; m * n];
        igemm_fused(m, k_dim, n, &w, &col, &bias, 4, true, &mut expect);
        let mut got = vec![0i8; m * n];
        igemm_conv(m, &w, &geom, &x, &bias, 4, true, &mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn scatter_fused_tconv_matches_gemm_then_scatter() {
        use crate::tconv::scatter_tconv2x2;
        let (c_in, c_out, h, w) = (3usize, 5usize, 4usize, 6usize);
        let hw = h * w;
        let x = rand_vec(c_in * hw, 10);
        let wk = rand_vec(4 * c_out * c_in, 11);
        let bias4 = rand_vec(4 * c_out, 12);
        let mut ytmp = vec![0.0f32; 4 * c_out * hw];
        sgemm_fused(4 * c_out, c_in, hw, &wk, &x, &mut ytmp, GemmEpilogue::Bias(&bias4));
        let mut expect = vec![0.0f32; 4 * c_out * hw];
        scatter_tconv2x2(c_out, h, w, &ytmp, &mut expect);
        let mut got = vec![0.0f32; 4 * c_out * hw];
        sgemm_tconv2x2(c_out, c_in, &wk, &x, h, w, &bias4, &mut got);
        assert_eq!(got, expect);
    }
}
