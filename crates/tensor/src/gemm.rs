//! Blocked, rayon-parallel matrix multiplication kernels.
//!
//! Two flavours are provided:
//!
//! * [`sgemm`] — `f32` GEMM used by the training path and the FP32 (GPU
//!   baseline) executor;
//! * [`igemm`] — `i8 x i8 -> i32` GEMM used by the functional DPU executor.
//!
//! Both compute `C = A * B` with `A: [m x k]`, `B: [k x n]`, `C: [m x n]`,
//! all row-major. Parallelism is over row blocks of `C`, which keeps each
//! rayon task writing to a disjoint slice (no locks, no unsafe). The inner
//! loops use an ikj ordering so the innermost loop streams both `B` and `C`
//! rows sequentially — the cache-friendly layout the perf-book recommends.

use rayon::prelude::*;

/// Rows of `C` handled per parallel task. 64 rows x 256 f32 columns ≈ 64 KiB,
/// comfortably inside L2 while giving rayon enough tasks to balance.
const ROW_BLOCK: usize = 64;

/// Panel width of `k` processed per pass, sized so a `ROW_BLOCK x K_BLOCK`
/// panel of `A` stays cache-resident.
const K_BLOCK: usize = 256;

/// `f32` GEMM: `c = a * b` (`a: m x k`, `b: k x n`, row-major).
///
/// Panics if slice lengths are inconsistent with the given dimensions.
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    c.fill(0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }

    c.par_chunks_mut(ROW_BLOCK * n).enumerate().for_each(|(blk, c_blk)| {
        let row0 = blk * ROW_BLOCK;
        let rows = c_blk.len() / n;
        for k0 in (0..k).step_by(K_BLOCK) {
            let k1 = (k0 + K_BLOCK).min(k);
            for i in 0..rows {
                let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
                let c_row = &mut c_blk[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * *bv;
                    }
                }
            }
        }
    });
}

/// `f32` GEMM with `A` transposed: `c = a^T * b` where `a: k x m` row-major.
///
/// Used by the convolution backward pass (`dX = W^T * dY`).
pub fn sgemm_at(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A size (transposed)");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    c.fill(0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    c.par_chunks_mut(ROW_BLOCK * n).enumerate().for_each(|(blk, c_blk)| {
        let row0 = blk * ROW_BLOCK;
        let rows = c_blk.len() / n;
        for kk in 0..k {
            let a_row = &a[kk * m..(kk + 1) * m];
            let b_row = &b[kk * n..(kk + 1) * n];
            for i in 0..rows {
                let aik = a_row[row0 + i];
                if aik == 0.0 {
                    continue;
                }
                let c_row = &mut c_blk[i * n..(i + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * *bv;
                }
            }
        }
    });
}

/// `f32` GEMM with `B` transposed: `c = a * b^T` where `b: n x k` row-major.
///
/// Used by the convolution weight-gradient pass (`dW = dY * col^T`).
pub fn sgemm_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size (transposed)");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || k == 0 || n == 0 {
        c.fill(0.0);
        return;
    }
    c.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv = acc;
        }
    });
}

/// INT8 GEMM with `i32` accumulation: `c = a * b`.
///
/// Mirrors the DPU's MAC array arithmetic: 8-bit operands, 32-bit
/// accumulators, no saturation until the requantisation step.
pub fn igemm(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    c.fill(0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    c.par_chunks_mut(ROW_BLOCK * n).enumerate().for_each(|(blk, c_blk)| {
        let row0 = blk * ROW_BLOCK;
        let rows = c_blk.len() / n;
        for i in 0..rows {
            let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
            let c_row = &mut c_blk[i * n..(i + 1) * n];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0 {
                    continue;
                }
                let aik = aik as i32;
                let b_row = &b[kk * n..(kk + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv as i32;
                }
            }
        }
    });
}

/// Reference (naive, sequential) f32 GEMM used by tests.
pub fn sgemm_reference(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())), "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn sgemm_matches_reference() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (65, 300, 33), (130, 64, 130)] {
            let a = rand_vec(m * k, 1);
            let b = rand_vec(k * n, 2);
            let mut c = vec![0.0; m * n];
            let mut c_ref = vec![0.0; m * n];
            sgemm(m, k, n, &a, &b, &mut c);
            sgemm_reference(m, k, n, &a, &b, &mut c_ref);
            assert_close(&c, &c_ref, 1e-4);
        }
    }

    #[test]
    fn sgemm_at_matches_reference() {
        let (m, k, n) = (17, 29, 13);
        let a_t = rand_vec(k * m, 3); // stored as k x m
        let b = rand_vec(k * n, 4);
        // Build the untransposed A for the reference.
        let mut a = vec![0.0; m * k];
        for i in 0..m {
            for kk in 0..k {
                a[i * k + kk] = a_t[kk * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        sgemm_at(m, k, n, &a_t, &b, &mut c);
        sgemm_reference(m, k, n, &a, &b, &mut c_ref);
        assert_close(&c, &c_ref, 1e-4);
    }

    #[test]
    fn sgemm_bt_matches_reference() {
        let (m, k, n) = (9, 21, 15);
        let a = rand_vec(m * k, 5);
        let b_t = rand_vec(n * k, 6); // stored as n x k
        let mut b = vec![0.0; k * n];
        for kk in 0..k {
            for j in 0..n {
                b[kk * n + j] = b_t[j * k + kk];
            }
        }
        let mut c = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        sgemm_bt(m, k, n, &a, &b_t, &mut c);
        sgemm_reference(m, k, n, &a, &b, &mut c_ref);
        assert_close(&c, &c_ref, 1e-4);
    }

    #[test]
    fn igemm_exact_small_case() {
        // 2x3 * 3x2
        let a: Vec<i8> = vec![1, -2, 3, 0, 5, -6];
        let b: Vec<i8> = vec![7, 8, 9, 10, 11, 12];
        let mut c = vec![0i32; 4];
        igemm(2, 3, 2, &a, &b, &mut c);
        assert_eq!(
            c,
            vec![1 * 7 - 2 * 9 + 3 * 11, 1 * 8 - 2 * 10 + 3 * 12, 5 * 9 - 6 * 11, 5 * 10 - 6 * 12]
        );
    }

    #[test]
    fn igemm_no_overflow_at_int8_extremes() {
        // k = 4096 at |a|=|b|=127 stays far below i32::MAX.
        let k = 4096;
        let a = vec![127i8; k];
        let b = vec![-128i8; k];
        let mut c = vec![0i32; 1];
        igemm(1, k, 1, &a, &b, &mut c);
        assert_eq!(c[0], 127i32 * -128 * k as i32);
    }

    #[test]
    fn empty_dimensions_are_ok() {
        let mut c: Vec<f32> = vec![];
        sgemm(0, 3, 4, &[], &[0.0; 12], &mut c);
        let mut c2 = vec![1.0f32; 4];
        sgemm(2, 0, 2, &[], &[], &mut c2);
        assert_eq!(c2, vec![0.0; 4]);
    }
}
