//! Packed, register-tiled matrix multiplication kernels with fused epilogues.
//!
//! Two flavours are provided:
//!
//! * [`sgemm`] / [`sgemm_fused`] — `f32` GEMM used by the training path and
//!   the FP32 (GPU baseline) executor;
//! * [`igemm`] / [`igemm_fused`] — `i8 x i8 -> i32` GEMM used by the
//!   functional DPU executor, with an optional fused requantise-clamp
//!   epilogue producing `i8` directly.
//!
//! All kernels compute `C = A * B` with `A: [m x k]`, `B: [k x n]`,
//! `C: [m x n]`, row-major (the `_at`/`_bt` variants read a transposed
//! operand). The implementation is a BLIS-style blocked engine:
//!
//! 1. **Packing.** `B` is packed once per call into `NR`-wide column panels
//!    stored k-major (`[jp][kk][NR]`), and `A` into `MR`-tall row panels
//!    (`[ip][kk][MR]`), both in thread-local scratch reused across calls.
//!    Edge panels are zero-padded to the full tile width, so the micro-kernel
//!    never sees a remainder and stays branch-free; padded lanes contribute
//!    exact zeros and are clipped at store time.
//! 2. **Micro-kernel.** An `MR x NR` register-accumulator tile walks the two
//!    panels contiguously over the whole `k` extent. The inner loops have
//!    constant trip counts, so LLVM unrolls the tile and autovectorizes the
//!    `NR` dimension (FMA-shaped f32; i8→i32 widening multiply-accumulate).
//! 3. **Fused epilogue.** Bias add, ReLU, and the DPU requantise-clamp are
//!    applied to the register accumulators as the tile is stored, removing
//!    the extra full passes over `C` that `conv2d`/`qconv3x3` used to make.
//!
//! Parallelism is over disjoint `MC`-row blocks of `C` via rayon — no locks,
//! no `unsafe`. Each output element is accumulated in ascending-`k` order
//! regardless of the thread count or block split, so results are
//! deterministic and thread-count invariant; `igemm` is bit-exact under any
//! regrouping because integer addition is associative.
//!
//! Note there is deliberately **no** `a[i][k] == 0` sparse-skip branch in the
//! inner loops (the previous implementation had one): a data-dependent branch
//! inside the innermost loop defeats autovectorization for *every* input and
//! makes latency input-dependent, while the skip only pays off when an entire
//! SIMD lane-group of multiplies would be saved — essentially never for dense
//! activations. Dense branch-free MACs are strictly faster here.

use crate::quantized::requantize_i32;
use crate::zero::Zero;
use rayon::prelude::*;
use std::cell::RefCell;

/// Rows of the register-accumulator micro-tile.
pub const MR: usize = 8;

/// Columns of the register-accumulator micro-tile. With AVX-512 this is two
/// vector registers per tile row (16 accumulator registers total for the
/// 8x32 tile), which measures fastest on both the f32 and the widening-i8
/// kernels; with AVX2 it is four.
pub const NR: usize = 32;

/// Rows of `C` handled per parallel task (a multiple of `MR`); small enough
/// to give rayon tasks to balance, large enough to amortise task dispatch.
pub(crate) const MC: usize = 32;

const _: () = assert!(MC.is_multiple_of(MR), "MC must be a multiple of MR");

/// Fused epilogue applied to the register accumulators at store time.
///
/// The bias is indexed by the **row** of `C` (the output channel in the
/// im2col convolution lowering); a missing entry (short or empty slice)
/// contributes `0.0`, so `Bias(&[])` is equivalent to `None`.
#[derive(Debug, Clone, Copy)]
pub enum GemmEpilogue<'a> {
    /// Store the raw accumulators.
    None,
    /// `c[i][j] = acc[i][j] + bias[i]`.
    Bias(&'a [f32]),
    /// `c[i][j] = max(acc[i][j] + bias[i], 0.0)`.
    BiasRelu(&'a [f32]),
}

/// One micro-tile's position within the output matrix.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Tile {
    /// Global row of the tile's first row (bias index base).
    pub(crate) row: usize,
    /// Row offset of the tile within the current row-block slice.
    pub(crate) ip0: usize,
    /// First column.
    pub(crate) j0: usize,
    /// Valid rows (`<= MR`; the rest is zero padding).
    pub(crate) rows: usize,
    /// Valid columns (`<= NR`).
    pub(crate) cols: usize,
}

thread_local! {
    /// Reusable packing scratch (A panels, B panels) for the f32 kernels.
    pub(crate) static PACK_F32: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    /// Reusable packing scratch for the INT8 kernels.
    pub(crate) static PACK_I8: RefCell<(Vec<i8>, Vec<i8>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// A pre-packed `A` operand: the `MR`-tall k-major row panels the micro-kernel
/// consumes, built once and reused across calls.
///
/// Inference weights are immutable, so re-packing them on every frame (as
/// [`sgemm_fused`] / [`igemm_fused`] must, since they only see flat slices) is
/// pure per-frame overhead. The pack-slot pass in `seneca-ir` builds one
/// `PackedA` per weight tensor at lowering time and routes frames through
/// [`sgemm_fused_packed`] / [`igemm_fused_packed`], whose per-call pack work
/// covers only the activation (`B`) panels.
///
/// The panel bytes are identical to what the unpacked entry points produce
/// internally, so packed and unpacked calls are bit-identical.
#[derive(Debug, Clone)]
pub struct PackedA<T> {
    m: usize,
    k: usize,
    pub(crate) panels: Vec<T>,
}

impl<T: Zero> PackedA<T> {
    /// Packs a row-major `m x k` matrix.
    pub fn pack(m: usize, k: usize, a: &[T]) -> Self {
        assert_eq!(a.len(), m * k, "A size");
        let mut panels = vec![T::ZERO; packed_a_len(m, k)];
        pack_a(m, k, |i, kk| a[i * k + kk], &mut panels);
        Self { m, k, panels }
    }

    /// Rows of the packed matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Shared (`k`) extent of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Bytes held by the panel buffer (for memory accounting).
    pub fn panel_len(&self) -> usize {
        self.panels.len()
    }
}

/// A pre-packed INT4 `A` operand: the same `MR`-tall k-major row panels as
/// [`PackedA<i8>`], but with two signed nibbles per byte — the panel buffer
/// is exactly half the size, halving weight-panel memory traffic in the
/// micro-kernel.
///
/// Packing runs along the `MR` dimension: each k-step of a panel holds `MR`
/// weights in `MR / 2` bytes, with the even row in the low nibble and the odd
/// row in the high nibble (`byte j = (a[2j+1] << 4) | (a[2j] & 0xF)`). The
/// micro-kernel sign-extends both nibbles back to `i32` in registers, so
/// [`igemm4_fused_packed`] is bit-identical to unpacking to `i8` and calling
/// [`igemm_fused`].
#[derive(Debug, Clone)]
pub struct PackedA4 {
    m: usize,
    k: usize,
    pub(crate) panels: Vec<u8>,
}

impl PackedA4 {
    /// Packs a row-major `m x k` matrix whose values all lie in `[-8, 7]`
    /// (panics otherwise — INT4 packing of wider data would corrupt weights
    /// silently).
    pub fn pack(m: usize, k: usize, a: &[i8]) -> Self {
        assert_eq!(a.len(), m * k, "A size");
        assert!(
            a.iter().all(|&v| (-8..=7).contains(&(v as i32))),
            "INT4 pack requires all values in [-8, 7]"
        );
        let mut wide = vec![0i8; packed_a_len(m, k)];
        pack_a(m, k, |i, kk| a[i * k + kk], &mut wide);
        Self { m, k, panels: pack_nibble_pairs(&wide) }
    }

    /// Rows of the packed matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Shared (`k`) extent of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Bytes held by the panel buffer (half of the equivalent INT8 panels).
    pub fn panel_len(&self) -> usize {
        self.panels.len()
    }

    /// Expands the nibble panels back to the equivalent [`PackedA<i8>`]
    /// (reference/fallback path; the panel bytes match `PackedA::pack` of the
    /// original matrix exactly).
    pub fn unpack(&self) -> PackedA<i8> {
        let mut panels = vec![0i8; self.panels.len() * 2];
        unpack_nibble_pairs(&self.panels, &mut panels);
        PackedA { m: self.m, k: self.k, panels }
    }
}

/// Packs adjacent pairs of `[-8, 7]` values into single bytes: even index in
/// the low nibble, odd index in the high nibble. `src.len()` must be even.
pub fn pack_nibble_pairs(src: &[i8]) -> Vec<u8> {
    assert!(src.len().is_multiple_of(2), "nibble packing needs an even length");
    src.chunks_exact(2).map(|p| ((p[1] as u8) << 4) | (p[0] as u8 & 0xF)).collect()
}

/// Inverse of [`pack_nibble_pairs`]: sign-extends both nibbles of each byte.
/// `dst.len()` must be `2 * src.len()`.
pub fn unpack_nibble_pairs(src: &[u8], dst: &mut [i8]) {
    assert_eq!(dst.len(), src.len() * 2, "nibble unpack size");
    for (d, &b) in dst.chunks_exact_mut(2).zip(src) {
        d[0] = ((b as i8) << 4) >> 4;
        d[1] = (b as i8) >> 4;
    }
}

/// Elements of `A`-panel scratch an `m x k` operand packs into (the `MR`-tall
/// row panels, tail panel zero padded). Public so memory accounting (the IR
/// plan's work-buffer bytes) can mirror what the kernels actually allocate.
pub fn packed_a_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k
}

/// Elements of `B`-panel scratch a `k x n` operand packs into (the `NR`-wide
/// column panels, tail panel zero padded).
pub fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k
}

/// Packs `A` (via `get(i, kk)`) into `MR`-tall row panels, k-major, zero
/// padding the tail panel's missing rows.
pub(crate) fn pack_a<T: Zero>(m: usize, k: usize, get: impl Fn(usize, usize) -> T, buf: &mut [T]) {
    for ip in 0..m.div_ceil(MR) {
        let i0 = ip * MR;
        let rows = MR.min(m - i0);
        let panel = &mut buf[ip * MR * k..(ip + 1) * MR * k];
        for (kk, dst) in panel.chunks_exact_mut(MR).enumerate() {
            for (ii, d) in dst.iter_mut().enumerate() {
                *d = if ii < rows { get(i0 + ii, kk) } else { T::ZERO };
            }
        }
    }
}

/// Packs `B` (via `get(kk, j)`) into `NR`-wide column panels, k-major, zero
/// padding the tail panel's missing columns.
pub(crate) fn pack_b<T: Zero>(k: usize, n: usize, get: impl Fn(usize, usize) -> T, buf: &mut [T]) {
    for jp in 0..n.div_ceil(NR) {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let panel = &mut buf[jp * NR * k..(jp + 1) * NR * k];
        for (kk, dst) in panel.chunks_exact_mut(NR).enumerate() {
            for (jj, d) in dst.iter_mut().enumerate() {
                *d = if jj < cols { get(kk, j0 + jj) } else { T::ZERO };
            }
        }
    }
}

/// Walks the packed panels and hands each `MR x NR` tile's accumulators to
/// `store`. Parallel over `MC`-row blocks of `C`; tiles never overlap, so
/// every task writes a disjoint slice.
///
/// The f32 driver hands tiles to a `store` closure; the INT8 drivers below
/// are standalone monolithic functions instead. The difference is deliberate:
/// LLVM's vectorization of the widening-i8 micro-kernel is extremely
/// sensitive to its surrounding code — inlined into the rayon worker closure
/// (with or without a `store` closure in the loop) it picks a
/// vectorize-over-k strategy that assembles operands byte-by-byte
/// (`vpinsrb`) and keeps every accumulator row in a stack slot, roughly
/// halving INT8 throughput. Compiled as an isolated `#[inline(never)]`
/// function with direct stores, the same source autovectorizes the intended
/// way (broadcast row scalar x widened B vector, accumulators in registers).
pub(crate) fn block_driver_f32<T: Send>(
    k: usize,
    n: usize,
    pa: &[f32],
    pb: &[f32],
    c: &mut [T],
    store: impl Fn(&[[f32; NR]; MR], &mut [T], Tile) + Sync,
) {
    let n_jp = n.div_ceil(NR);
    c.par_chunks_mut(MC * n).enumerate().for_each(|(blk, c_blk)| {
        let row0 = blk * MC;
        let rows_blk = c_blk.len() / n;
        let mut ip0 = 0;
        while ip0 < rows_blk {
            let tile_rows = MR.min(rows_blk - ip0);
            let apanel = &pa[(row0 + ip0) / MR * (MR * k)..][..MR * k];
            for jp in 0..n_jp {
                let j0 = jp * NR;
                let bpanel = &pb[jp * (NR * k)..][..NR * k];
                let acc = microkernel_f32(apanel, bpanel);
                let tile = Tile { row: row0 + ip0, ip0, j0, rows: tile_rows, cols: NR.min(n - j0) };
                store(&acc, c_blk, tile);
            }
            ip0 += MR;
        }
    });
}

/// One `MC`-row block of the INT8 GEMM with the given store statement,
/// expanded as an isolated `#[inline(never)]` function (see
/// [`block_driver_f32`] for why). `$store` receives `acc` (the finished
/// tile), `ii` (tile row), `row` (global `C` row) and `dst` (the clipped
/// output row slice) in scope.
macro_rules! i8_block_fn {
    ($name:ident, $t:ty, ($($extra:ident: $ty:ty),*), $store:expr) => {
        #[allow(clippy::too_many_arguments)]
        #[inline(never)]
        pub(crate) fn $name(
            k: usize,
            n: usize,
            row0: usize,
            pa: &[i8],
            pb: &[i8],
            c_blk: &mut [$t],
            $($extra: $ty,)*
        ) {
            let rows_blk = c_blk.len() / n;
            let n_jp = n.div_ceil(NR);
            let mut ip0 = 0;
            while ip0 < rows_blk {
                let tile_rows = MR.min(rows_blk - ip0);
                let apanel = &pa[(row0 + ip0) / MR * (MR * k)..][..MR * k];
                for jp in 0..n_jp {
                    let j0 = jp * NR;
                    let cols = NR.min(n - j0);
                    let bpanel = &pb[jp * (NR * k)..][..NR * k];
                    let mut acc = [[0i32; NR]; MR];
                    for (a, b) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
                        let mut bw = [0i32; NR];
                        for (w, &v) in bw.iter_mut().zip(b) {
                            *w = v as i32;
                        }
                        for (i, acc_i) in acc.iter_mut().enumerate() {
                            let ai = a[i] as i32;
                            for (acc_ij, &bv) in acc_i.iter_mut().zip(&bw) {
                                *acc_ij += ai * bv;
                            }
                        }
                    }
                    for ii in 0..tile_rows {
                        let row = row0 + ip0 + ii;
                        let dst = &mut c_blk[(ip0 + ii) * n + j0..][..cols];
                        #[allow(clippy::redundant_closure_call)]
                        ($store)(&acc, ii, row, dst);
                    }
                }
                ip0 += MR;
            }
        }
    };
}

i8_block_fn!(i8_block_raw, i32, (), |acc: &[[i32; NR]; MR],
                                     ii: usize,
                                     _row: usize,
                                     dst: &mut [i32]| {
    dst.copy_from_slice(&acc[ii][..dst.len()]);
});

i8_block_fn!(
    i8_block_requant,
    i8,
    (bias: &[i32], shift: i32, relu: bool),
    |acc: &[[i32; NR]; MR], ii: usize, row: usize, dst: &mut [i8]| {
        let bi = bias.get(row).copied().unwrap_or(0);
        for (d, &v) in dst.iter_mut().zip(&acc[ii]) {
            let mut q = requantize_i32(v + bi, shift);
            if relu && q < 0 {
                q = 0;
            }
            *d = q;
        }
    }
);

/// One `MC`-row block of the INT4-weight GEMM with the fused requant store.
/// Mirrors [`i8_block_requant`] exactly — same tile walk, same ascending-`k`
/// accumulation order (so results are bit-identical to unpack-then-i8) — but
/// reads the `A` panels nibble-packed: each k-step of a panel is `MR / 2`
/// bytes, sign-extended into an `[i32; MR]` register array before the MAC
/// loop. Standalone `#[inline(never)]` for the same autovectorization reason
/// as the i8 blocks (see [`block_driver_f32`]).
#[allow(clippy::too_many_arguments)]
#[inline(never)]
pub(crate) fn i4_block_requant(
    k: usize,
    n: usize,
    row0: usize,
    pa: &[u8],
    pb: &[i8],
    c_blk: &mut [i8],
    bias: &[i32],
    shift: i32,
    relu: bool,
) {
    const MR2: usize = MR / 2;
    let rows_blk = c_blk.len() / n;
    let n_jp = n.div_ceil(NR);
    let mut ip0 = 0;
    while ip0 < rows_blk {
        let tile_rows = MR.min(rows_blk - ip0);
        let apanel = &pa[(row0 + ip0) / MR * (MR2 * k)..][..MR2 * k];
        for jp in 0..n_jp {
            let j0 = jp * NR;
            let cols = NR.min(n - j0);
            let bpanel = &pb[jp * (NR * k)..][..NR * k];
            let mut acc = [[0i32; NR]; MR];
            for (a, b) in apanel.chunks_exact(MR2).zip(bpanel.chunks_exact(NR)) {
                let mut bw = [0i32; NR];
                for (w, &v) in bw.iter_mut().zip(b) {
                    *w = v as i32;
                }
                let mut aw = [0i32; MR];
                for (j, &byte) in a.iter().enumerate() {
                    aw[2 * j] = (((byte as i8) << 4) >> 4) as i32;
                    aw[2 * j + 1] = ((byte as i8) >> 4) as i32;
                }
                for (i, acc_i) in acc.iter_mut().enumerate() {
                    let ai = aw[i];
                    for (acc_ij, &bv) in acc_i.iter_mut().zip(&bw) {
                        *acc_ij += ai * bv;
                    }
                }
            }
            for ii in 0..tile_rows {
                let row = row0 + ip0 + ii;
                let dst = &mut c_blk[(ip0 + ii) * n + j0..][..cols];
                let bi = bias.get(row).copied().unwrap_or(0);
                for (d, &v) in dst.iter_mut().zip(&acc[ii]) {
                    let mut q = requantize_i32(v + bi, shift);
                    if relu && q < 0 {
                        q = 0;
                    }
                    *d = q;
                }
            }
        }
        ip0 += MR;
    }
}

/// The f32 micro-kernel: an `MR x NR` accumulator tile over the full `k`
/// extent of one A row panel and one B column panel. Branch-free with
/// constant trip counts so LLVM keeps the tile in vector registers.
#[inline(always)]
fn microkernel_f32(ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let a: &[f32; MR] = a.try_into().expect("panel chunk");
        let b: &[f32; NR] = b.try_into().expect("panel chunk");
        for (i, acc_i) in acc.iter_mut().enumerate() {
            let aik = a[i];
            for (acc_ij, &bv) in acc_i.iter_mut().zip(b) {
                *acc_ij += aik * bv;
            }
        }
    }
    acc
}

/// Shared f32 entry: packs both operands and runs the tiled driver with the
/// requested epilogue. `ga(i, kk)` / `gb(kk, j)` adapt the operand layouts
/// (row-major or transposed) without separate kernel copies.
fn gemm_f32(
    m: usize,
    k: usize,
    n: usize,
    ga: impl Fn(usize, usize) -> f32,
    gb: impl Fn(usize, usize) -> f32,
    c: &mut [f32],
    epi: GemmEpilogue<'_>,
) {
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_F32.with(|cell| {
        let (pa, pb) = &mut *cell.borrow_mut();
        let (la, lb) = (packed_a_len(m, k), packed_b_len(k, n));
        if pa.len() < la {
            pa.resize(la, 0.0);
        }
        if pb.len() < lb {
            pb.resize(lb, 0.0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", ((la + lb) * 4) as u64);
            pack_a(m, k, ga, &mut pa[..la]);
            pack_b(k, n, gb, &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n * 4) as u64);
        run_f32_blocks(k, n, &pa[..la], &pb[..lb], c, epi);
    });
}

/// Runs the tiled f32 driver over already-packed panels, applying `epi` at
/// store time. Shared by the pack-per-call and pre-packed-A entry points.
pub(crate) fn run_f32_blocks(
    k: usize,
    n: usize,
    pa: &[f32],
    pb: &[f32],
    c: &mut [f32],
    epi: GemmEpilogue<'_>,
) {
    let store = |acc: &[[f32; NR]; MR], c_blk: &mut [f32], t: Tile| {
        for ii in 0..t.rows {
            let dst = &mut c_blk[(t.ip0 + ii) * n + t.j0..][..t.cols];
            match epi {
                GemmEpilogue::None => {
                    for (d, &v) in dst.iter_mut().zip(&acc[ii]) {
                        *d = v;
                    }
                }
                GemmEpilogue::Bias(b) => {
                    let bias = b.get(t.row + ii).copied().unwrap_or(0.0);
                    for (d, &v) in dst.iter_mut().zip(&acc[ii]) {
                        *d = v + bias;
                    }
                }
                GemmEpilogue::BiasRelu(b) => {
                    let bias = b.get(t.row + ii).copied().unwrap_or(0.0);
                    for (d, &v) in dst.iter_mut().zip(&acc[ii]) {
                        *d = (v + bias).max(0.0);
                    }
                }
            }
        }
    };
    block_driver_f32(k, n, pa, pb, c, store);
}

/// `f32` GEMM: `c = a * b` (`a: m x k`, `b: k x n`, row-major).
///
/// Panics if slice lengths are inconsistent with the given dimensions.
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    sgemm_fused(m, k, n, a, b, c, GemmEpilogue::None);
}

/// [`sgemm`] with a fused epilogue applied from the register accumulators —
/// no extra pass over `C`.
pub fn sgemm_fused(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epi: GemmEpilogue<'_>,
) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    gemm_f32(m, k, n, |i, kk| a[i * k + kk], |kk, j| b[kk * n + j], c, epi);
}

/// `f32` GEMM with `A` transposed: `c = a^T * b` where `a: k x m` row-major.
///
/// Used by the convolution backward pass (`dX = W^T * dY`). The transposition
/// is absorbed by the packing step — the micro-kernel is shared.
pub fn sgemm_at(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A size (transposed)");
    assert_eq!(b.len(), k * n, "B size");
    gemm_f32(m, k, n, |i, kk| a[kk * m + i], |kk, j| b[kk * n + j], c, GemmEpilogue::None);
}

/// `f32` GEMM with `B` transposed: `c = a * b^T` where `b: n x k` row-major.
///
/// Used by the convolution weight-gradient pass (`dW = dY * col^T`).
pub fn sgemm_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size (transposed)");
    gemm_f32(m, k, n, |i, kk| a[i * k + kk], |kk, j| b[j * k + kk], c, GemmEpilogue::None);
}

/// [`sgemm_fused`] with a pre-packed `A` operand: only `B` is packed per
/// call, so the per-call pack traffic drops to the activation panels.
/// Bit-identical to the unpacked call — the `A` panel bytes are the same.
pub fn sgemm_fused_packed(
    pa: &PackedA<f32>,
    n: usize,
    b: &[f32],
    c: &mut [f32],
    epi: GemmEpilogue<'_>,
) {
    let (m, k) = (pa.m, pa.k);
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_F32.with(|cell| {
        let (_, pb) = &mut *cell.borrow_mut();
        let lb = packed_b_len(k, n);
        if pb.len() < lb {
            pb.resize(lb, 0.0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", (lb * 4) as u64);
            pack_b(k, n, |kk, j| b[kk * n + j], &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n * 4) as u64);
        run_f32_blocks(k, n, &pa.panels, &pb[..lb], c, epi);
    });
}

/// [`igemm_fused`] with a pre-packed `A` operand (see
/// [`sgemm_fused_packed`]); bit-identical to the unpacked call.
pub fn igemm_fused_packed(
    pa: &PackedA<i8>,
    n: usize,
    b: &[i8],
    bias: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) {
    let (m, k) = (pa.m, pa.k);
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(out.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_I8.with(|cell| {
        let (_, pb) = &mut *cell.borrow_mut();
        let lb = packed_b_len(k, n);
        if pb.len() < lb {
            pb.resize(lb, 0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", lb as u64);
            pack_b(k, n, |kk, j| b[kk * n + j], &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n) as u64);
        let pbs = &pb[..lb];
        out.par_chunks_mut(MC * n).enumerate().for_each(|(blk, out_blk)| {
            i8_block_requant(k, n, blk * MC, &pa.panels, pbs, out_blk, bias, shift, relu);
        });
    });
}

/// [`igemm_fused_packed`] for a nibble-packed INT4 `A` operand: the weight
/// panels stream at half the bytes, the activation (`B`) packing and the
/// fused bias/requant/ReLU epilogue are identical. Bit-identical to
/// `pa.unpack()` + [`igemm_fused_packed`] — the micro-kernel widens both
/// nibbles to `i32` and accumulates in the same ascending-`k` order.
pub fn igemm4_fused_packed(
    pa: &PackedA4,
    n: usize,
    b: &[i8],
    bias: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) {
    let (m, k) = (pa.m, pa.k);
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(out.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_I8.with(|cell| {
        let (_, pb) = &mut *cell.borrow_mut();
        let lb = packed_b_len(k, n);
        if pb.len() < lb {
            pb.resize(lb, 0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", lb as u64);
            pack_b(k, n, |kk, j| b[kk * n + j], &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n) as u64);
        let pbs = &pb[..lb];
        out.par_chunks_mut(MC * n).enumerate().for_each(|(blk, out_blk)| {
            i4_block_requant(k, n, blk * MC, &pa.panels, pbs, out_blk, bias, shift, relu);
        });
    });
}

/// Shared INT8 entry: packs both i8 operands into the thread-local scratch
/// and hands the panels to `run` (which fans out over `MC`-row blocks).
fn with_packed_i8<T>(
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    b: &[i8],
    c: &mut [T],
    run: impl FnOnce(&[i8], &[i8], &mut [T]),
) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    PACK_I8.with(|cell| {
        let (pa, pb) = &mut *cell.borrow_mut();
        let (la, lb) = (packed_a_len(m, k), packed_b_len(k, n));
        if pa.len() < la {
            pa.resize(la, 0);
        }
        if pb.len() < lb {
            pb.resize(lb, 0);
        }
        {
            #[cfg(feature = "trace-gemm")]
            let _sp = seneca_trace::span_bytes("gemm", "pack", (la + lb) as u64);
            pack_a(m, k, |i, kk| a[i * k + kk], &mut pa[..la]);
            pack_b(k, n, |kk, j| b[kk * n + j], &mut pb[..lb]);
        }
        #[cfg(feature = "trace-gemm")]
        let _sp = seneca_trace::span_bytes("gemm", "kernel", (m * n) as u64);
        run(&pa[..la], &pb[..lb], c);
    });
}

/// INT8 GEMM with `i32` accumulation: `c = a * b`.
///
/// Mirrors the DPU's MAC array arithmetic: 8-bit operands, 32-bit
/// accumulators, no saturation until the requantisation step. Bit-identical
/// to the naive triple loop for any tiling, because i32 addition is
/// associative and the zero padding contributes exact zeros.
pub fn igemm(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    with_packed_i8(m, k, n, a, b, c, |pa, pb, c| {
        c.par_chunks_mut(MC * n).enumerate().for_each(|(blk, c_blk)| {
            i8_block_raw(k, n, blk * MC, pa, pb, c_blk);
        });
    });
}

/// [`igemm`] with the DPU requantise-clamp epilogue fused into the store:
/// `out[i][j] = clamp(round((acc[i][j] + bias[i]) >> shift))`, optionally
/// ReLU-clamped, written directly as `i8`. The per-row bias is at
/// accumulator scale; a short or empty slice contributes `0`.
///
/// Bit-identical to `igemm` followed by `requantize_i32` over the full
/// accumulator buffer — the i32 sum is exact, so fusing the epilogue cannot
/// change a single output byte.
#[allow(clippy::too_many_arguments)]
pub fn igemm_fused(
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    b: &[i8],
    bias: &[i32],
    shift: i32,
    relu: bool,
    out: &mut [i8],
) {
    with_packed_i8(m, k, n, a, b, out, |pa, pb, out| {
        out.par_chunks_mut(MC * n).enumerate().for_each(|(blk, out_blk)| {
            i8_block_requant(k, n, blk * MC, pa, pb, out_blk, bias, shift, relu);
        });
    });
}

/// Reference (naive, sequential) f32 GEMM used by tests and benchmarks.
pub fn sgemm_reference(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Reference (naive, sequential) INT8 GEMM; [`igemm`] must match it bit for
/// bit.
pub fn igemm_reference(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for kk in 0..k {
                acc += a[i * k + kk] as i32 * b[kk * n + j] as i32;
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantized::requantize_slice;
    use rand::{Rng, SeedableRng};

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn rand_i8(len: usize, seed: u64) -> Vec<i8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-128i32..128) as i8).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())), "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn sgemm_matches_reference() {
        // Mix of tile-aligned and deliberately misaligned sizes.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (65, 300, 33), (130, 64, 130), (8, 16, 16)] {
            let a = rand_vec(m * k, 1);
            let b = rand_vec(k * n, 2);
            let mut c = vec![0.0; m * n];
            let mut c_ref = vec![0.0; m * n];
            sgemm(m, k, n, &a, &b, &mut c);
            sgemm_reference(m, k, n, &a, &b, &mut c_ref);
            assert_close(&c, &c_ref, 1e-4);
        }
    }

    #[test]
    fn sgemm_at_matches_reference() {
        let (m, k, n) = (17, 29, 13);
        let a_t = rand_vec(k * m, 3); // stored as k x m
        let b = rand_vec(k * n, 4);
        // Build the untransposed A for the reference.
        let mut a = vec![0.0; m * k];
        for i in 0..m {
            for kk in 0..k {
                a[i * k + kk] = a_t[kk * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        sgemm_at(m, k, n, &a_t, &b, &mut c);
        sgemm_reference(m, k, n, &a, &b, &mut c_ref);
        assert_close(&c, &c_ref, 1e-4);
    }

    #[test]
    fn sgemm_bt_matches_reference() {
        let (m, k, n) = (9, 21, 15);
        let a = rand_vec(m * k, 5);
        let b_t = rand_vec(n * k, 6); // stored as n x k
        let mut b = vec![0.0; k * n];
        for kk in 0..k {
            for j in 0..n {
                b[kk * n + j] = b_t[j * k + kk];
            }
        }
        let mut c = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        sgemm_bt(m, k, n, &a, &b_t, &mut c);
        sgemm_reference(m, k, n, &a, &b, &mut c_ref);
        assert_close(&c, &c_ref, 1e-4);
    }

    #[test]
    fn fused_bias_and_relu_match_separate_passes() {
        let (m, k, n) = (13, 37, 22); // off-tile on purpose
        let a = rand_vec(m * k, 7);
        let b = rand_vec(k * n, 8);
        let bias = rand_vec(m, 9);
        let mut plain = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut plain);

        let mut fused_bias = vec![0.0; m * n];
        sgemm_fused(m, k, n, &a, &b, &mut fused_bias, GemmEpilogue::Bias(&bias));
        let mut fused_relu = vec![0.0; m * n];
        sgemm_fused(m, k, n, &a, &b, &mut fused_relu, GemmEpilogue::BiasRelu(&bias));

        for i in 0..m {
            for j in 0..n {
                let v = plain[i * n + j] + bias[i];
                assert_eq!(fused_bias[i * n + j], v, "bias epilogue at ({i},{j})");
                assert_eq!(fused_relu[i * n + j], v.max(0.0), "relu epilogue at ({i},{j})");
            }
        }
    }

    #[test]
    fn empty_bias_is_identity() {
        let (m, k, n) = (5, 9, 11);
        let a = rand_vec(m * k, 10);
        let b = rand_vec(k * n, 11);
        let mut plain = vec![0.0; m * n];
        let mut fused = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut plain);
        sgemm_fused(m, k, n, &a, &b, &mut fused, GemmEpilogue::Bias(&[]));
        assert_eq!(plain, fused);
    }

    #[test]
    fn igemm_matches_naive_bit_exactly() {
        for &(m, k, n) in &[(1, 1, 1), (7, 13, 5), (64, 576, 100), (33, 100, 47)] {
            let a = rand_i8(m * k, 20);
            let b = rand_i8(k * n, 21);
            let mut c = vec![0i32; m * n];
            let mut c_ref = vec![0i32; m * n];
            igemm(m, k, n, &a, &b, &mut c);
            igemm_reference(m, k, n, &a, &b, &mut c_ref);
            assert_eq!(c, c_ref, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn igemm_fused_matches_unfused_requant_bit_exactly() {
        let (m, k, n) = (11, 90, 23);
        let a = rand_i8(m * k, 22);
        let b = rand_i8(k * n, 23);
        let bias: Vec<i32> = (0..m as i32).map(|i| i * 37 - 100).collect();
        for &(shift, relu) in &[(4, false), (4, true), (0, false), (-1, true), (9, false)] {
            let mut acc = vec![0i32; m * n];
            igemm(m, k, n, &a, &b, &mut acc);
            for (i, v) in acc.iter_mut().enumerate() {
                *v += bias[i / n];
            }
            let mut expect = vec![0i8; m * n];
            requantize_slice(&acc, shift, &mut expect);
            if relu {
                for v in &mut expect {
                    *v = (*v).max(0);
                }
            }
            let mut fused = vec![0i8; m * n];
            igemm_fused(m, k, n, &a, &b, &bias, shift, relu, &mut fused);
            assert_eq!(fused, expect, "shift {shift} relu {relu}");
        }
    }

    #[test]
    fn packed_a_f32_matches_unpacked_bit_exactly() {
        for &(m, k, n) in &[(3, 5, 7), (65, 300, 33), (8, 16, 16)] {
            let a = rand_vec(m * k, 30);
            let b = rand_vec(k * n, 31);
            let bias = rand_vec(m, 32);
            let pa = PackedA::pack(m, k, &a);
            assert_eq!((pa.m(), pa.k()), (m, k));
            for epi in
                [GemmEpilogue::None, GemmEpilogue::Bias(&bias), GemmEpilogue::BiasRelu(&bias)]
            {
                let mut c = vec![0.0; m * n];
                let mut c_packed = vec![0.0; m * n];
                sgemm_fused(m, k, n, &a, &b, &mut c, epi);
                sgemm_fused_packed(&pa, n, &b, &mut c_packed, epi);
                assert_eq!(c, c_packed, "{m}x{k}x{n} {epi:?}");
            }
        }
    }

    #[test]
    fn packed_a_i8_matches_unpacked_bit_exactly() {
        for &(m, k, n) in &[(11, 90, 23), (64, 576, 100), (1, 1, 1)] {
            let a = rand_i8(m * k, 33);
            let b = rand_i8(k * n, 34);
            let bias: Vec<i32> = (0..m as i32).map(|i| i * 13 - 60).collect();
            let pa = PackedA::pack(m, k, &a);
            for &(shift, relu) in &[(4, false), (2, true), (0, false)] {
                let mut c = vec![0i8; m * n];
                let mut c_packed = vec![0i8; m * n];
                igemm_fused(m, k, n, &a, &b, &bias, shift, relu, &mut c);
                igemm_fused_packed(&pa, n, &b, &bias, shift, relu, &mut c_packed);
                assert_eq!(c, c_packed, "{m}x{k}x{n} shift {shift} relu {relu}");
            }
        }
    }

    fn rand_i4(len: usize, seed: u64) -> Vec<i8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-8i32..8) as i8).collect()
    }

    #[test]
    fn nibble_pack_unpack_roundtrip() {
        let src = rand_i4(64, 40);
        let packed = pack_nibble_pairs(&src);
        assert_eq!(packed.len(), src.len() / 2);
        let mut back = vec![0i8; src.len()];
        unpack_nibble_pairs(&packed, &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn packed_a4_unpack_matches_packed_a_i8() {
        for &(m, k) in &[(1, 1), (7, 13), (64, 576), (33, 100)] {
            let a = rand_i4(m * k, 41);
            let pa4 = PackedA4::pack(m, k, &a);
            let pa8 = PackedA::pack(m, k, &a);
            assert_eq!(pa4.panel_len() * 2, pa8.panel_len(), "{m}x{k}");
            assert_eq!(pa4.unpack().panels, pa8.panels, "{m}x{k}");
        }
    }

    #[test]
    fn igemm4_matches_unpacked_i8_bit_exactly() {
        for &(m, k, n) in &[(11, 90, 23), (64, 576, 100), (1, 1, 1), (8, 16, 32)] {
            let a = rand_i4(m * k, 42);
            let b = rand_i8(k * n, 43);
            let bias: Vec<i32> = (0..m as i32).map(|i| i * 13 - 60).collect();
            let pa4 = PackedA4::pack(m, k, &a);
            for &(shift, relu) in &[(4, false), (2, true), (0, false), (-1, true)] {
                let mut c8 = vec![0i8; m * n];
                let mut c4 = vec![0i8; m * n];
                igemm_fused(m, k, n, &a, &b, &bias, shift, relu, &mut c8);
                igemm4_fused_packed(&pa4, n, &b, &bias, shift, relu, &mut c4);
                assert_eq!(c4, c8, "{m}x{k}x{n} shift {shift} relu {relu}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "INT4 pack requires")]
    fn packed_a4_rejects_wide_values() {
        PackedA4::pack(1, 2, &[8, 0]);
    }

    #[test]
    fn igemm_exact_small_case() {
        // 2x3 * 3x2
        let a: Vec<i8> = vec![1, -2, 3, 0, 5, -6];
        let b: Vec<i8> = vec![7, 8, 9, 10, 11, 12];
        let mut c = vec![0i32; 4];
        igemm(2, 3, 2, &a, &b, &mut c);
        assert_eq!(
            c,
            vec![1 * 7 - 2 * 9 + 3 * 11, 1 * 8 - 2 * 10 + 3 * 12, 5 * 9 - 6 * 11, 5 * 10 - 6 * 12]
        );
    }

    #[test]
    fn igemm_no_overflow_at_int8_extremes() {
        // k = 4096 at |a|=|b|=127 stays far below i32::MAX.
        let k = 4096;
        let a = vec![127i8; k];
        let b = vec![-128i8; k];
        let mut c = vec![0i32; 1];
        igemm(1, k, 1, &a, &b, &mut c);
        assert_eq!(c[0], 127i32 * -128 * k as i32);
    }

    #[test]
    fn empty_dimensions_are_ok() {
        let mut c: Vec<f32> = vec![];
        sgemm(0, 3, 4, &[], &[0.0; 12], &mut c);
        let mut c2 = vec![1.0f32; 4];
        sgemm(2, 0, 2, &[], &[], &mut c2);
        assert_eq!(c2, vec![0.0; 4]);
    }

    #[test]
    fn k_zero_with_epilogue_writes_bias() {
        let bias = vec![1.5f32, -2.0];
        let mut c = vec![9.0f32; 6];
        sgemm_fused(2, 0, 3, &[], &[], &mut c, GemmEpilogue::BiasRelu(&bias));
        assert_eq!(c, vec![1.5, 1.5, 1.5, 0.0, 0.0, 0.0]);
    }
}
