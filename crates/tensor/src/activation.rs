//! Activation functions: ReLU and channel-wise softmax / argmax.

use crate::shape::Shape4;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Elementwise ReLU.
pub fn relu(x: &Tensor) -> Tensor {
    let mut y = x.clone();
    y.data_mut().par_iter_mut().for_each(|v| *v = v.max(0.0));
    y
}

/// Elementwise ReLU into a caller-owned output slice ([`relu`] bit for bit).
pub fn relu_into(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "buffer length mismatch");
    out.par_iter_mut().zip(x.par_iter()).for_each(|(o, &v)| *o = v.max(0.0));
}

/// ReLU backward: gradient passes where the forward *input* was positive.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(x.shape(), dy.shape());
    let mut dx = dy.clone();
    dx.data_mut().par_iter_mut().zip(x.data().par_iter()).for_each(|(g, &xv)| {
        if xv <= 0.0 {
            *g = 0.0;
        }
    });
    dx
}

/// Softmax over the channel dimension, independently at each `(n, h, w)`
/// pixel — the form used by the SENECA output head (6 probability maps).
pub fn softmax_channels(x: &Tensor) -> Tensor {
    let mut y = Tensor::zeros(x.shape());
    softmax_channels_into(x.shape(), x.data(), y.data_mut());
    y
}

/// Channel softmax into a caller-owned output slice ([`softmax_channels`]
/// bit for bit; every output element is written, stale contents are fine).
pub fn softmax_channels_into(s: Shape4, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), s.len(), "input buffer/shape mismatch");
    assert_eq!(out.len(), s.len(), "output buffer size");
    let hw = s.hw();
    out.par_chunks_mut(s.chw()).enumerate().for_each(|(n, y_n)| {
        let x_n = &x[n * s.chw()..(n + 1) * s.chw()];
        for pix in 0..hw {
            let mut maxv = f32::NEG_INFINITY;
            for c in 0..s.c {
                maxv = maxv.max(x_n[c * hw + pix]);
            }
            let mut denom = 0.0;
            for c in 0..s.c {
                let e = (x_n[c * hw + pix] - maxv).exp();
                y_n[c * hw + pix] = e;
                denom += e;
            }
            let inv = 1.0 / denom;
            for c in 0..s.c {
                y_n[c * hw + pix] *= inv;
            }
        }
    });
}

/// Backward of [`softmax_channels`]: given the forward output `y` and the
/// upstream gradient `dy`, returns `dx` where
/// `dx_c = y_c * (dy_c - Σ_k y_k dy_k)` per pixel.
pub fn softmax_channels_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    let s = y.shape();
    assert_eq!(s, dy.shape());
    let hw = s.hw();
    let mut dx = Tensor::zeros(s);
    let y_data = y.data();
    let dy_data = dy.data();
    dx.data_mut().par_chunks_mut(s.chw()).enumerate().for_each(|(n, dx_n)| {
        let y_n = &y_data[n * s.chw()..(n + 1) * s.chw()];
        let dy_n = &dy_data[n * s.chw()..(n + 1) * s.chw()];
        for pix in 0..hw {
            let mut dot = 0.0;
            for c in 0..s.c {
                dot += y_n[c * hw + pix] * dy_n[c * hw + pix];
            }
            for c in 0..s.c {
                dx_n[c * hw + pix] = y_n[c * hw + pix] * (dy_n[c * hw + pix] - dot);
            }
        }
    });
    dx
}

/// Per-pixel argmax over channels; returns `[N, 1, H, W]`-shaped labels as a
/// flat `Vec<u8>` of length `N*H*W`. This is the final SENECA prediction step.
pub fn argmax_channels(x: &Tensor) -> Vec<u8> {
    let s = x.shape();
    assert!(s.c <= u8::MAX as usize + 1);
    let hw = s.hw();
    let x_data = x.data();
    let mut out = vec![0u8; s.n * hw];
    out.par_chunks_mut(hw).enumerate().for_each(|(n, labels)| {
        let x_n = &x_data[n * s.chw()..(n + 1) * s.chw()];
        for (pix, lbl) in labels.iter_mut().enumerate() {
            let mut best = x_n[pix];
            let mut best_c = 0u8;
            for c in 1..s.c {
                let v = x_n[c * hw + pix];
                if v > best {
                    best = v;
                    best_c = c as u8;
                }
            }
            *lbl = best_c;
        }
    });
    out
}

/// Argmax over channels for an INT8 tensor buffer (used on DPU outputs).
pub fn argmax_channels_i8(shape: Shape4, data: &[i8]) -> Vec<u8> {
    assert_eq!(data.len(), shape.len());
    let hw = shape.hw();
    let mut out = vec![0u8; shape.n * hw];
    out.par_chunks_mut(hw).enumerate().for_each(|(n, labels)| {
        let x_n = &data[n * shape.chw()..(n + 1) * shape.chw()];
        for (pix, lbl) in labels.iter_mut().enumerate() {
            let mut best = x_n[pix];
            let mut best_c = 0u8;
            for c in 1..shape.c {
                let v = x_n[c * hw + pix];
                if v > best {
                    best = v;
                    best_c = c as u8;
                }
            }
            *lbl = best_c;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![-1.0, 0.0, 2.0, -0.5]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![-1.0, 0.0, 2.0, 3.0]);
        let dy = Tensor::full(Shape4::new(1, 1, 1, 4), 1.0);
        assert_eq!(relu_backward(&x, &dy).data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn softmax_sums_to_one_per_pixel() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let s = Shape4::new(2, 6, 4, 4);
        let x = Tensor::from_vec(s, (0..s.len()).map(|_| rng.gen_range(-5.0f32..5.0)).collect());
        let y = softmax_channels(&x);
        for n in 0..s.n {
            for h in 0..s.h {
                for w in 0..s.w {
                    let sum: f32 = (0..s.c).map(|c| y.at(n, c, h, w)).sum();
                    assert!((sum - 1.0).abs() < 1e-5);
                    for c in 0..s.c {
                        assert!(y.at(n, c, h, w) > 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let x = Tensor::from_vec(Shape4::new(1, 3, 1, 1), vec![1000.0, 1001.0, 999.0]);
        let y = softmax_channels(&x);
        assert!(y.data().iter().all(|v| v.is_finite()));
        let x2 = Tensor::from_vec(Shape4::new(1, 3, 1, 1), vec![0.0, 1.0, -1.0]);
        let y2 = softmax_channels(&x2);
        for (a, b) in y.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_matches_numerical() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let s = Shape4::new(1, 4, 2, 2);
        let x = Tensor::from_vec(s, (0..s.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let g = Tensor::from_vec(s, (0..s.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let loss = |x: &Tensor| -> f32 {
            softmax_channels(x).data().iter().zip(g.data()).map(|(a, b)| a * b).sum()
        };
        let y = softmax_channels(&x);
        let dx = softmax_channels_backward(&y, &g);
        let eps = 1e-3;
        for i in 0..s.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn argmax_selects_peak_channel() {
        let mut x = Tensor::zeros(Shape4::new(1, 3, 2, 2));
        *x.at_mut(0, 2, 0, 0) = 1.0;
        *x.at_mut(0, 1, 1, 1) = 2.0;
        let labels = argmax_channels(&x);
        assert_eq!(labels, vec![2, 0, 0, 1]);
    }

    #[test]
    fn argmax_i8_matches_f32() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let s = Shape4::new(2, 6, 3, 3);
        let data_i: Vec<i8> = (0..s.len()).map(|_| rng.gen_range(-100i8..100)).collect();
        let x = Tensor::from_vec(s, data_i.iter().map(|&v| v as f32).collect());
        assert_eq!(argmax_channels(&x), argmax_channels_i8(s, &data_i));
    }
}
