//! Batch normalisation (training forward/backward, inference, fold helpers).

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Learnable parameters and running statistics of a BatchNorm layer.
///
/// Per TensorFlow convention, `running_mean`/`running_var` are counted among
/// the layer's parameters (4 per channel) even though only `gamma`/`beta`
/// receive gradients — this matters for reproducing Table II's totals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BnState {
    /// Scale, one per channel.
    pub gamma: Vec<f32>,
    /// Shift, one per channel.
    pub beta: Vec<f32>,
    /// Exponential moving average of batch means.
    pub running_mean: Vec<f32>,
    /// Exponential moving average of batch variances.
    pub running_var: Vec<f32>,
    /// EMA momentum (0.9; lower than the TF default 0.99 so short
    /// CPU-scale trainings still produce usable inference statistics).
    pub momentum: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BnState {
    /// Identity-initialised BN for `channels` channels.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.9,
            eps: 1e-5,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }
}

/// Cache returned by the training-mode forward pass, needed for backward.
#[derive(Debug, Clone)]
pub struct BnCache {
    /// Normalised input `(x - mu) / sqrt(var + eps)`.
    pub xhat: Tensor,
    /// Per-channel `1 / sqrt(var + eps)` of the batch statistics.
    pub inv_std: Vec<f32>,
}

/// Training-mode forward: normalises with *batch* statistics, updates the
/// running statistics in `bn`, and returns `(y, cache)`.
pub fn batchnorm_forward(
    x: &Tensor,
    bn: &mut BnState,
    training: bool,
) -> (Tensor, Option<BnCache>) {
    let s = x.shape();
    assert_eq!(s.c, bn.channels());
    if !training {
        return (batchnorm_inference(x, bn), None);
    }
    let count = (s.n * s.hw()) as f32;
    let mut mean = vec![0.0f32; s.c];
    let mut var = vec![0.0f32; s.c];
    for n in 0..s.n {
        for (c, m) in mean.iter_mut().enumerate() {
            *m += plane(x, n, c).iter().sum::<f32>();
        }
    }
    for m in &mut mean {
        *m /= count;
    }
    for n in 0..s.n {
        for c in 0..s.c {
            let plane = plane(x, n, c);
            var[c] += plane.iter().map(|v| (v - mean[c]).powi(2)).sum::<f32>();
        }
    }
    for v in &mut var {
        *v /= count;
    }

    let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + bn.eps).sqrt()).collect();
    let mut xhat = Tensor::zeros(s);
    let mut y = Tensor::zeros(s);
    for n in 0..s.n {
        for c in 0..s.c {
            let src = plane(x, n, c).to_vec();
            let base = s.idx(n, c, 0, 0);
            for (i, v) in src.iter().enumerate() {
                let xh = (v - mean[c]) * inv_std[c];
                xhat.data_mut()[base + i] = xh;
                y.data_mut()[base + i] = bn.gamma[c] * xh + bn.beta[c];
            }
        }
    }

    for c in 0..s.c {
        bn.running_mean[c] = bn.momentum * bn.running_mean[c] + (1.0 - bn.momentum) * mean[c];
        bn.running_var[c] = bn.momentum * bn.running_var[c] + (1.0 - bn.momentum) * var[c];
    }
    (y, Some(BnCache { xhat, inv_std }))
}

/// Inference-mode forward using the running statistics.
pub fn batchnorm_inference(x: &Tensor, bn: &BnState) -> Tensor {
    let s = x.shape();
    let mut y = Tensor::zeros(s);
    batchnorm_inference_into(s, x.data(), bn, y.data_mut());
    y
}

/// Inference-mode BatchNorm into a caller-owned output slice
/// ([`batchnorm_inference`] bit for bit: same per-channel `scale`/`shift`
/// folding, same accumulation order).
pub fn batchnorm_inference_into(s: crate::shape::Shape4, x: &[f32], bn: &BnState, out: &mut [f32]) {
    assert_eq!(s.c, bn.channels(), "BN channel count");
    assert_eq!(x.len(), s.len(), "input buffer/shape mismatch");
    assert_eq!(out.len(), s.len(), "output buffer size");
    for c in 0..s.c {
        let inv = 1.0 / (bn.running_var[c] + bn.eps).sqrt();
        let scale = bn.gamma[c] * inv;
        let shift = bn.beta[c] - bn.running_mean[c] * scale;
        for n in 0..s.n {
            let base = s.idx(n, c, 0, 0);
            for i in 0..s.hw() {
                out[base + i] = scale * x[base + i] + shift;
            }
        }
    }
}

/// Gradients from [`batchnorm_backward`].
#[derive(Debug, Clone)]
pub struct BnGrads {
    /// Gradient w.r.t. the input.
    pub dx: Tensor,
    /// Gradient w.r.t. gamma.
    pub dgamma: Vec<f32>,
    /// Gradient w.r.t. beta.
    pub dbeta: Vec<f32>,
}

/// Backward pass (training mode; uses the cache from the forward pass).
pub fn batchnorm_backward(bn: &BnState, cache: &BnCache, dy: &Tensor) -> BnGrads {
    let s = dy.shape();
    let count = (s.n * s.hw()) as f32;
    let mut dgamma = vec![0.0f32; s.c];
    let mut dbeta = vec![0.0f32; s.c];
    for n in 0..s.n {
        for c in 0..s.c {
            let dyp = plane(dy, n, c);
            let xhp = plane(&cache.xhat, n, c);
            for (g, xh) in dyp.iter().zip(xhp) {
                dgamma[c] += g * xh;
                dbeta[c] += g;
            }
        }
    }

    // dx = (gamma * inv_std / m) * (m*dy - dbeta - xhat*dgamma)
    let mut dx = Tensor::zeros(s);
    for n in 0..s.n {
        for c in 0..s.c {
            let k = bn.gamma[c] * cache.inv_std[c] / count;
            let base = s.idx(n, c, 0, 0);
            let dyp = plane(dy, n, c).to_vec();
            let xhp = plane(&cache.xhat, n, c).to_vec();
            for i in 0..dyp.len() {
                dx.data_mut()[base + i] = k * (count * dyp[i] - dbeta[c] - xhp[i] * dgamma[c]);
            }
        }
    }
    BnGrads { dx, dgamma, dbeta }
}

/// Folds this BN (with its *running* statistics) into a preceding convolution
/// with weights `[C_out, C_in, K, K]` and bias `b`, returning `(w', b')` such
/// that `bn(conv(x, w) + b) == conv(x, w') + b'` at inference time.
///
/// This mirrors what the Vitis AI quantizer and VAI_C do before quantisation.
pub fn fold_bn_into_conv(w: &Tensor, b: &[f32], bn: &BnState) -> (Tensor, Vec<f32>) {
    let ws = w.shape();
    assert_eq!(ws.n, bn.channels(), "BN channels must match conv C_out");
    let mut w2 = w.clone();
    let mut b2 = vec![0.0f32; ws.n];
    let per_out = ws.c * ws.h * ws.w;
    for co in 0..ws.n {
        let inv = 1.0 / (bn.running_var[co] + bn.eps).sqrt();
        let scale = bn.gamma[co] * inv;
        for v in &mut w2.data_mut()[co * per_out..(co + 1) * per_out] {
            *v *= scale;
        }
        let bias_in = if b.is_empty() { 0.0 } else { b[co] };
        b2[co] = (bias_in - bn.running_mean[co]) * scale + bn.beta[co];
    }
    (w2, b2)
}

fn plane(t: &Tensor, n: usize, c: usize) -> &[f32] {
    let s = t.shape();
    let base = s.idx(n, c, 0, 0);
    &t.data()[base..base + s.hw()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d, Conv2dParams};
    use crate::shape::Shape4;
    use rand::{Rng, SeedableRng};

    fn rand_tensor(shape: Shape4, seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Tensor::from_vec(shape, (0..shape.len()).map(|_| rng.gen_range(-2.0..2.0)).collect())
    }

    #[test]
    fn training_forward_normalises_batch() {
        let x = rand_tensor(Shape4::new(4, 3, 5, 5), 1);
        let mut bn = BnState::new(3);
        let (y, cache) = batchnorm_forward(&x, &mut bn, true);
        let cache = cache.unwrap();
        // Per-channel mean ~0, var ~1 after normalisation with identity gamma.
        let s = y.shape();
        for c in 0..3 {
            let mut vals = vec![];
            for n in 0..s.n {
                vals.extend_from_slice(plane(&y, n, c));
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
        assert_eq!(cache.xhat.shape(), x.shape());
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let x = Tensor::full(Shape4::new(2, 1, 4, 4), 10.0);
        let mut bn = BnState::new(1);
        bn.momentum = 0.5;
        let _ = batchnorm_forward(&x, &mut bn, true);
        assert!((bn.running_mean[0] - 5.0).abs() < 1e-5); // 0.5*0 + 0.5*10
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BnState::new(1);
        bn.running_mean[0] = 2.0;
        bn.running_var[0] = 4.0;
        bn.gamma[0] = 3.0;
        bn.beta[0] = 1.0;
        let x = Tensor::full(Shape4::new(1, 1, 1, 2), 4.0);
        let y = batchnorm_inference(&x, &bn);
        // (4-2)/2 * 3 + 1 = 4 (eps negligible)
        for v in y.data() {
            assert!((v - 4.0).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let x = rand_tensor(Shape4::new(2, 2, 3, 3), 2);
        let g = rand_tensor(Shape4::new(2, 2, 3, 3), 3);
        let bn0 = BnState::new(2);
        let loss = |x: &Tensor| -> f32 {
            let mut bn = bn0.clone();
            let (y, _) = batchnorm_forward(x, &mut bn, true);
            y.data().iter().zip(g.data()).map(|(a, b)| a * b).sum()
        };
        let mut bn = bn0.clone();
        let (_, cache) = batchnorm_forward(&x, &mut bn, true);
        let grads = batchnorm_backward(&bn0, &cache.unwrap(), &g);
        let eps = 1e-2;
        for &i in &[0usize, 9, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let ana = grads.dx.data()[i];
            assert!((num - ana).abs() < 5e-2, "dx[{i}]: {num} vs {ana}");
        }
    }

    #[test]
    fn folding_preserves_inference_output() {
        let p = Conv2dParams::SAME_3X3;
        let x = rand_tensor(Shape4::new(1, 2, 6, 6), 4);
        let w = rand_tensor(Shape4::new(3, 2, 3, 3), 5);
        let b = vec![0.1, -0.2, 0.3];
        let mut bn = BnState::new(3);
        bn.running_mean = vec![0.4, -0.5, 0.6];
        bn.running_var = vec![1.5, 0.7, 2.0];
        bn.gamma = vec![1.2, 0.8, -1.0];
        bn.beta = vec![0.0, 0.1, -0.1];

        let y1 = batchnorm_inference(&conv2d(&x, &w, &b, p), &bn);
        let (w2, b2) = fold_bn_into_conv(&w, &b, &bn);
        let y2 = conv2d(&x, &w2, &b2, p);
        for (a, bv) in y1.data().iter().zip(y2.data()) {
            assert!((a - bv).abs() < 1e-4, "{a} vs {bv}");
        }
    }
}
