//! 2x2 stride-2 max pooling with argmax bookkeeping for the backward pass.

use crate::shape::Shape4;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Output of [`maxpool2x2`]: the pooled tensor and, for every output pixel,
/// the index (0..4, row-major within the 2x2 window) of the selected input.
#[derive(Debug, Clone)]
pub struct PoolOut {
    /// Pooled tensor `[N, C, H/2, W/2]`.
    pub y: Tensor,
    /// Winning-window positions, one `u8` in `0..4` per output element.
    pub argmax: Vec<u8>,
}

/// 2x2/stride-2 max pool (floor semantics on odd sizes, like TF "valid").
pub fn maxpool2x2(x: &Tensor) -> PoolOut {
    let xs = x.shape();
    let out_shape = xs.pooled2x2();
    let (ho, wo) = (out_shape.h, out_shape.w);
    let mut y = Tensor::zeros(out_shape);
    let mut argmax = vec![0u8; out_shape.len()];
    let x_data = x.data();

    y.data_mut().par_chunks_mut(ho * wo).zip(argmax.par_chunks_mut(ho * wo)).enumerate().for_each(
        |(plane, (y_plane, am_plane))| {
            let x_plane = &x_data[plane * xs.hw()..(plane + 1) * xs.hw()];
            for oy in 0..ho {
                let r0 = &x_plane[(2 * oy) * xs.w..(2 * oy) * xs.w + xs.w];
                let r1 = &x_plane[(2 * oy + 1) * xs.w..(2 * oy + 1) * xs.w + xs.w];
                for ox in 0..wo {
                    let vals = [r0[2 * ox], r0[2 * ox + 1], r1[2 * ox], r1[2 * ox + 1]];
                    let (mut best, mut best_i) = (vals[0], 0u8);
                    for (i, &v) in vals.iter().enumerate().skip(1) {
                        if v > best {
                            best = v;
                            best_i = i as u8;
                        }
                    }
                    y_plane[oy * wo + ox] = best;
                    am_plane[oy * wo + ox] = best_i;
                }
            }
        },
    );
    PoolOut { y, argmax }
}

/// 2x2/stride-2 max pool into a caller-owned output slice — the inference
/// form used by the planned executor: same window selection as
/// [`maxpool2x2`] (strict `>`, first max wins) but without the argmax
/// bookkeeping. Returns the output shape.
pub fn maxpool2x2_into(xs: Shape4, x: &[f32], out: &mut [f32]) -> Shape4 {
    let out_shape = xs.pooled2x2();
    assert_eq!(x.len(), xs.len(), "input buffer/shape mismatch");
    assert_eq!(out.len(), out_shape.len(), "output buffer size");
    let (ho, wo) = (out_shape.h, out_shape.w);

    out.par_chunks_mut(ho * wo).enumerate().for_each(|(plane, y_plane)| {
        let x_plane = &x[plane * xs.hw()..(plane + 1) * xs.hw()];
        for oy in 0..ho {
            let r0 = &x_plane[(2 * oy) * xs.w..(2 * oy) * xs.w + xs.w];
            let r1 = &x_plane[(2 * oy + 1) * xs.w..(2 * oy + 1) * xs.w + xs.w];
            for ox in 0..wo {
                let vals = [r0[2 * ox], r0[2 * ox + 1], r1[2 * ox], r1[2 * ox + 1]];
                let mut best = vals[0];
                for &v in vals.iter().skip(1) {
                    if v > best {
                        best = v;
                    }
                }
                y_plane[oy * wo + ox] = best;
            }
        }
    });
    out_shape
}

/// Backward max pool: routes each upstream gradient to the input position
/// that won the forward max. `x_shape` is the original input shape.
pub fn maxpool2x2_backward(x_shape: Shape4, pool: &PoolOut, dy: &Tensor) -> Tensor {
    let out_shape = pool.y.shape();
    assert_eq!(dy.shape(), out_shape);
    let (ho, wo) = (out_shape.h, out_shape.w);
    let mut dx = Tensor::zeros(x_shape);
    let dy_data = dy.data();
    let w = x_shape.w;

    dx.data_mut().par_chunks_mut(x_shape.hw()).enumerate().for_each(|(plane, dx_plane)| {
        let dy_plane = &dy_data[plane * ho * wo..(plane + 1) * ho * wo];
        let am_plane = &pool.argmax[plane * ho * wo..(plane + 1) * ho * wo];
        for oy in 0..ho {
            for ox in 0..wo {
                let g = dy_plane[oy * wo + ox];
                let a = am_plane[oy * wo + ox] as usize;
                let iy = 2 * oy + a / 2;
                let ix = 2 * ox + a % 2;
                dx_plane[iy * w + ix] += g;
            }
        }
    });
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_max_in_each_window() {
        let x = Tensor::from_vec(
            Shape4::new(1, 1, 4, 4),
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.0, //
                -3.0, -4.0, 0.0, 9.0,
            ],
        );
        let out = maxpool2x2(&x);
        assert_eq!(out.y.data(), &[4.0, 8.0, -1.0, 9.0]);
        assert_eq!(out.argmax, vec![3, 3, 0, 3]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let x = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 9.0, 2.0, 3.0]);
        let out = maxpool2x2(&x);
        let dy = Tensor::full(Shape4::new(1, 1, 1, 1), 5.0);
        let dx = maxpool2x2_backward(x.shape(), &out, &dy);
        assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn odd_sizes_drop_last_row_col() {
        let x = Tensor::full(Shape4::new(1, 2, 5, 5), 1.0);
        let out = maxpool2x2(&x);
        assert_eq!(out.y.shape(), Shape4::new(1, 2, 2, 2));
    }

    #[test]
    fn ties_pick_first_occurrence() {
        let x = Tensor::full(Shape4::new(1, 1, 2, 2), 7.0);
        let out = maxpool2x2(&x);
        assert_eq!(out.argmax, vec![0]);
    }

    #[test]
    fn gradient_is_partition_of_upstream() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Tensor::from_vec(
            Shape4::new(2, 3, 6, 6),
            (0..2 * 3 * 36).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let out = maxpool2x2(&x);
        let dy = Tensor::from_vec(
            out.y.shape(),
            (0..out.y.shape().len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let dx = maxpool2x2_backward(x.shape(), &out, &dy);
        // Sum of dx equals sum of dy (each gradient goes to exactly one spot).
        assert!((dx.sum() - dy.sum()).abs() < 1e-4);
        // Count of nonzeros equals number of output pixels.
        let nz = dx.data().iter().filter(|v| **v != 0.0).count();
        assert_eq!(nz, dy.shape().len());
    }
}
