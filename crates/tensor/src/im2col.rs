//! `im2col`/`col2im` lowering for convolution.
//!
//! For an input plane `[C, H, W]`, a `K x K` kernel with padding `p` and
//! stride `s`, `im2col` builds a matrix of shape `[C*K*K, H_out*W_out]` whose
//! column `o` holds the receptive field of output pixel `o`. Convolution then
//! becomes a GEMM with the `[C_out, C*K*K]` weight matrix.

use crate::zero::Zero;

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub c_in: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Square kernel size.
    pub k: usize,
    /// Symmetric zero padding.
    pub pad: usize,
    /// Stride.
    pub stride: usize,
}

impl ConvGeom {
    /// Output height.
    pub fn h_out(&self) -> usize {
        (self.h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output width.
    pub fn w_out(&self) -> usize {
        (self.w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Rows of the im2col matrix (`C*K*K`).
    pub fn col_rows(&self) -> usize {
        self.c_in * self.k * self.k
    }

    /// Columns of the im2col matrix (`H_out*W_out`).
    pub fn col_cols(&self) -> usize {
        self.h_out() * self.w_out()
    }
}

/// Lowers one `[C, H, W]` input plane into the column matrix `col`
/// (`[C*K*K, H_out*W_out]`, row-major), generic over the element type —
/// padding writes `T::ZERO`. `col` must be pre-sized; it is fully
/// overwritten. [`im2col`] (f32) and [`im2col_i8`] are thin wrappers.
pub fn im2col_t<T: Zero>(geom: &ConvGeom, input: &[T], col: &mut [T]) {
    let (h_out, w_out) = (geom.h_out(), geom.w_out());
    let cols = h_out * w_out;
    assert_eq!(input.len(), geom.c_in * geom.h * geom.w, "input size");
    assert_eq!(col.len(), geom.col_rows() * cols, "col size");

    for c in 0..geom.c_in {
        let plane = &input[c * geom.h * geom.w..(c + 1) * geom.h * geom.w];
        for ky in 0..geom.k {
            for kx in 0..geom.k {
                let row = (c * geom.k + ky) * geom.k + kx;
                let out_row = &mut col[row * cols..(row + 1) * cols];
                for oy in 0..h_out {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    let dst = &mut out_row[oy * w_out..(oy + 1) * w_out];
                    if iy < 0 || iy >= geom.h as isize {
                        dst.fill(T::ZERO);
                        continue;
                    }
                    let src_row = &plane[iy as usize * geom.w..(iy as usize + 1) * geom.w];
                    for (ox, d) in dst.iter_mut().enumerate() {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        *d = if ix < 0 || ix >= geom.w as isize {
                            T::ZERO
                        } else {
                            src_row[ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// `f32` [`im2col_t`] (zero padding maps to `0.0`).
pub fn im2col(geom: &ConvGeom, input: &[f32], col: &mut [f32]) {
    im2col_t(geom, input, col);
}

/// INT8 [`im2col_t`] (zero padding maps to `0`).
pub fn im2col_i8(geom: &ConvGeom, input: &[i8], col: &mut [i8]) {
    im2col_t(geom, input, col);
}

/// Scatters a column matrix back into an input plane, accumulating overlaps.
/// This is the adjoint of [`im2col`] and is used for `dX` in the backward
/// pass. `out` must be pre-sized `[C, H, W]`; it is overwritten.
pub fn col2im(geom: &ConvGeom, col: &[f32], out: &mut [f32]) {
    let (h_out, w_out) = (geom.h_out(), geom.w_out());
    let cols = h_out * w_out;
    assert_eq!(out.len(), geom.c_in * geom.h * geom.w, "out size");
    assert_eq!(col.len(), geom.col_rows() * cols, "col size");
    out.fill(0.0);

    for c in 0..geom.c_in {
        let plane = &mut out[c * geom.h * geom.w..(c + 1) * geom.h * geom.w];
        for ky in 0..geom.k {
            for kx in 0..geom.k {
                let row = (c * geom.k + ky) * geom.k + kx;
                let src_row = &col[row * cols..(row + 1) * cols];
                for oy in 0..h_out {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.h as isize {
                        continue;
                    }
                    let dst = &mut plane[iy as usize * geom.w..(iy as usize + 1) * geom.w];
                    let src = &src_row[oy * w_out..(oy + 1) * w_out];
                    for (ox, s) in src.iter().enumerate() {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix >= 0 && ix < geom.w as isize {
                            dst[ix as usize] += s;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_3x3_same(c: usize, h: usize, w: usize) -> ConvGeom {
        ConvGeom { c_in: c, h, w, k: 3, pad: 1, stride: 1 }
    }

    #[test]
    fn output_geometry() {
        let g = geom_3x3_same(4, 16, 16);
        assert_eq!((g.h_out(), g.w_out()), (16, 16));
        let g2 = ConvGeom { c_in: 1, h: 8, w: 8, k: 2, pad: 0, stride: 2 };
        assert_eq!((g2.h_out(), g2.w_out()), (4, 4));
    }

    #[test]
    fn im2col_center_pixel_receptive_field() {
        // 1-channel 3x3 input, identity check at the centre output pixel.
        let g = geom_3x3_same(1, 3, 3);
        let input: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let mut col = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&g, &input, &mut col);
        // Centre output (index 4) must see the whole 3x3 patch in order.
        let centre: Vec<f32> = (0..9).map(|r| col[r * 9 + 4]).collect();
        assert_eq!(centre, input);
        // Top-left output (index 0): padded rows/cols are zero.
        let tl: Vec<f32> = (0..9).map(|r| col[r * 9]).collect();
        assert_eq!(tl, vec![0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 4.0, 5.0]);
    }

    #[test]
    fn im2col_i8_matches_f32_pattern() {
        let g = geom_3x3_same(2, 5, 4);
        let input_f: Vec<f32> = (0..g.c_in * g.h * g.w).map(|v| (v as f32) - 10.0).collect();
        let input_i: Vec<i8> = input_f.iter().map(|&v| v as i8).collect();
        let mut col_f = vec![0.0; g.col_rows() * g.col_cols()];
        let mut col_i = vec![0i8; g.col_rows() * g.col_cols()];
        im2col(&g, &input_f, &mut col_f);
        im2col_i8(&g, &input_i, &mut col_i);
        for (f, i) in col_f.iter().zip(&col_i) {
            assert_eq!(*f as i8, *i);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backprop needs.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let g = geom_3x3_same(3, 7, 6);
        let x: Vec<f32> = (0..g.c_in * g.h * g.w).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f32> =
            (0..g.col_rows() * g.col_cols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut cx = vec![0.0; y.len()];
        im2col(&g, &x, &mut cx);
        let mut ay = vec![0.0; x.len()];
        col2im(&g, &y, &mut ay);
        let lhs: f32 = cx.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
