//! 2-D convolution: implicit-GEMM forward, `im2col` + GEMM backward.
//!
//! The forward path never materializes the column matrix — the im2col index
//! math runs inside the GEMM panel pack (see [`crate::igemm`]). The backward
//! pass keeps explicit `im2col`/`col2im` because it needs the column matrix
//! as a GEMM operand in its own right (`dW = dY * col^T`).

use crate::gemm::{sgemm_at, sgemm_bt, GemmEpilogue};
use crate::igemm::sgemm_conv;
use crate::im2col::{col2im, im2col, ConvGeom};
use crate::shape::Shape4;
use crate::tensor::Tensor;

/// Static parameters of a convolution layer.
///
/// Weights are stored as a [`Tensor`] of shape `[C_out, C_in, K, K]` (NCHW
/// with `n = C_out`); the bias is a flat `Vec<f32>` of length `C_out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Square kernel size.
    pub k: usize,
    /// Symmetric zero padding.
    pub pad: usize,
    /// Stride.
    pub stride: usize,
}

impl Conv2dParams {
    /// The SENECA default: 3x3, padding 1, stride 1 ("same" convolution).
    pub const SAME_3X3: Self = Self { k: 3, pad: 1, stride: 1 };

    fn geom(&self, input: Shape4) -> ConvGeom {
        ConvGeom {
            c_in: input.c,
            h: input.h,
            w: input.w,
            k: self.k,
            pad: self.pad,
            stride: self.stride,
        }
    }
}

/// Forward convolution: `y = conv(x, w) + b`.
///
/// * `x`: `[N, C_in, H, W]`
/// * `w`: `[C_out, C_in, K, K]`
/// * `b`: length `C_out` (pass an empty slice to skip the bias)
///
/// Returns `[N, C_out, H_out, W_out]`.
pub fn conv2d(x: &Tensor, w: &Tensor, b: &[f32], p: Conv2dParams) -> Tensor {
    let geom = p.geom(x.shape());
    let out_shape = Shape4::new(x.shape().n, w.shape().n, geom.h_out(), geom.w_out());
    let mut out = Tensor::zeros(out_shape);
    conv2d_into(x.shape(), x.data(), w, b, p, out.data_mut());
    out
}

/// Forward convolution into a caller-owned output slice — the arithmetic of
/// [`conv2d`] bit for bit, with the output storage coming from the caller
/// (per-worker arena). The activation panels pack directly from the feature
/// map (implicit GEMM), so there is no column buffer to provide and
/// steady-state execution performs no allocation beyond the thread-local
/// GEMM pack scratch. Returns the output shape.
pub fn conv2d_into(
    xs: Shape4,
    x: &[f32],
    w: &Tensor,
    b: &[f32],
    p: Conv2dParams,
    out: &mut [f32],
) -> Shape4 {
    conv2d_fused_into(xs, x, w, b, false, p, out)
}

/// [`conv2d_into`] with an optional fused ReLU: bias and activation are
/// applied by the GEMM epilogue straight from the register accumulators, so
/// the fused-Conv+ReLU graph node makes a single pass over the output
/// instead of three (GEMM store, bias pass, ReLU pass).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_fused_into(
    xs: Shape4,
    x: &[f32],
    w: &Tensor,
    b: &[f32],
    relu: bool,
    p: Conv2dParams,
    out: &mut [f32],
) -> Shape4 {
    let ws = w.shape();
    assert_eq!(x.len(), xs.len(), "input buffer/shape mismatch");
    assert_eq!(ws.c, xs.c, "C_in mismatch: weights {} input {}", ws.c, xs.c);
    assert_eq!(ws.h, p.k);
    assert_eq!(ws.w, p.k);
    assert!(b.is_empty() || b.len() == ws.n, "bias length");

    let geom = p.geom(xs);
    let (ho, wo) = (geom.h_out(), geom.w_out());
    let out_shape = Shape4::new(xs.n, ws.n, ho, wo);
    assert_eq!(out.len(), out_shape.len(), "output buffer size");

    let epi = match (b.is_empty(), relu) {
        (true, false) => GemmEpilogue::None,
        (false, false) => GemmEpilogue::Bias(b),
        // BiasRelu with an empty slice is a plain ReLU (missing bias reads 0).
        (_, true) => GemmEpilogue::BiasRelu(b),
    };

    for n in 0..xs.n {
        let x_n = &x[n * xs.chw()..(n + 1) * xs.chw()];
        let y_n = &mut out[n * out_shape.chw()..(n + 1) * out_shape.chw()];
        sgemm_conv(ws.n, w.data(), &geom, x_n, y_n, epi);
    }
    out_shape
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct ConvGrads {
    /// Gradient w.r.t. the input, same shape as `x`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weights, same shape as `w`.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias, length `C_out`.
    pub db: Vec<f32>,
}

/// Backward convolution. Given the forward input `x`, the weights `w`, and
/// the upstream gradient `dy` (shaped like the forward output), computes
/// gradients for input, weights, and bias.
pub fn conv2d_backward(x: &Tensor, w: &Tensor, dy: &Tensor, p: Conv2dParams) -> ConvGrads {
    let xs = x.shape();
    let ws = w.shape();
    let ys = dy.shape();
    let geom = p.geom(xs);
    assert_eq!(ys.c, ws.n);
    assert_eq!((ys.h, ys.w), (geom.h_out(), geom.w_out()));
    assert_eq!(ys.n, xs.n);

    let ckk = geom.col_rows();
    let cols = geom.col_cols();

    let mut dw = Tensor::zeros(ws);
    let mut db = vec![0.0f32; ws.n];
    let mut dx = Tensor::zeros(xs);

    let mut col = vec![0.0f32; ckk * cols];
    let mut dcol = vec![0.0f32; ckk * cols];
    let mut dw_n = vec![0.0f32; ws.len()];
    for n in 0..xs.n {
        let x_n = &x.data()[n * xs.chw()..(n + 1) * xs.chw()];
        let dy_n = &dy.data()[n * ys.chw()..(n + 1) * ys.chw()];

        // dW += dY_n · col_nᵀ
        im2col(&geom, x_n, &mut col);
        sgemm_bt(ws.n, cols, ckk, dy_n, &col, &mut dw_n);
        for (acc, v) in dw.data_mut().iter_mut().zip(&dw_n) {
            *acc += v;
        }

        // db += Σ_spatial dY_n
        for (co, acc) in db.iter_mut().enumerate() {
            *acc += dy_n[co * cols..(co + 1) * cols].iter().sum::<f32>();
        }

        // dX_n = col2im(Wᵀ · dY_n)
        sgemm_at(ckk, ws.n, cols, w.data(), dy_n, &mut dcol);
        col2im(&geom, &dcol, &mut dx.data_mut()[n * xs.chw()..(n + 1) * xs.chw()]);
    }

    ConvGrads { dx, dw, db }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_tensor(shape: Shape4, seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Tensor::from_vec(shape, (0..shape.len()).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    /// Direct (quadruple-loop) reference convolution.
    fn conv_reference(x: &Tensor, w: &Tensor, b: &[f32], p: Conv2dParams) -> Tensor {
        let xs = x.shape();
        let ws = w.shape();
        let ho = (xs.h + 2 * p.pad - p.k) / p.stride + 1;
        let wo = (xs.w + 2 * p.pad - p.k) / p.stride + 1;
        let mut out = Tensor::zeros(Shape4::new(xs.n, ws.n, ho, wo));
        for n in 0..xs.n {
            for co in 0..ws.n {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = if b.is_empty() { 0.0 } else { b[co] };
                        for ci in 0..xs.c {
                            for ky in 0..p.k {
                                for kx in 0..p.k {
                                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                                    let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                                    if iy >= 0
                                        && iy < xs.h as isize
                                        && ix >= 0
                                        && ix < xs.w as isize
                                    {
                                        acc += x.at(n, ci, iy as usize, ix as usize)
                                            * w.at(co, ci, ky, kx);
                                    }
                                }
                            }
                        }
                        *out.at_mut(n, co, oy, ox) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_direct_reference() {
        let p = Conv2dParams::SAME_3X3;
        let x = rand_tensor(Shape4::new(2, 3, 8, 7), 1);
        let w = rand_tensor(Shape4::new(5, 3, 3, 3), 2);
        let b: Vec<f32> = (0..5).map(|i| i as f32 * 0.1).collect();
        let y = conv2d(&x, &w, &b, p);
        let y_ref = conv_reference(&x, &w, &b, p);
        assert_eq!(y.shape(), y_ref.shape());
        for (a, r) in y.data().iter().zip(y_ref.data()) {
            assert!((a - r).abs() < 1e-4, "{a} vs {r}");
        }
    }

    #[test]
    fn forward_unit_kernel_identity() {
        // A 1x1-like identity built from a 3x3 kernel with centre 1.
        let p = Conv2dParams::SAME_3X3;
        let x = rand_tensor(Shape4::new(1, 1, 6, 6), 3);
        let mut w = Tensor::zeros(Shape4::new(1, 1, 3, 3));
        *w.at_mut(0, 0, 1, 1) = 1.0;
        let y = conv2d(&x, &w, &[], p);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let p = Conv2dParams::SAME_3X3;
        let x = rand_tensor(Shape4::new(1, 2, 5, 5), 4);
        let w = rand_tensor(Shape4::new(3, 2, 3, 3), 5);
        let b = vec![0.05, -0.1, 0.2];
        // Loss = sum(y * g) for a fixed random g => dy = g.
        let g = rand_tensor(Shape4::new(1, 3, 5, 5), 6);
        let loss = |x: &Tensor, w: &Tensor, b: &[f32]| -> f32 {
            conv2d(x, w, b, p).data().iter().zip(g.data()).map(|(a, b)| a * b).sum()
        };

        let grads = conv2d_backward(&x, &w, &g, p);

        let eps = 1e-3;
        // Check a sample of input gradient entries.
        for &i in &[0usize, 7, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            let ana = grads.dx.data()[i];
            assert!((num - ana).abs() < 2e-2, "dx[{i}]: num {num} vs ana {ana}");
        }
        // Check a sample of weight gradients.
        for &i in &[0usize, 10, 31, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            let ana = grads.dw.data()[i];
            assert!((num - ana).abs() < 2e-2, "dw[{i}]: num {num} vs ana {ana}");
        }
        // Bias gradients.
        for co in 0..3 {
            let mut bp = b.clone();
            bp[co] += eps;
            let mut bm = b.clone();
            bm[co] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!((num - grads.db[co]).abs() < 2e-2);
        }
    }

    #[test]
    fn strided_conv_shapes() {
        let p = Conv2dParams { k: 3, pad: 1, stride: 2 };
        let x = rand_tensor(Shape4::new(1, 2, 8, 8), 7);
        let w = rand_tensor(Shape4::new(4, 2, 3, 3), 8);
        let y = conv2d(&x, &w, &[], p);
        assert_eq!(y.shape(), Shape4::new(1, 4, 4, 4));
        let y_ref = conv_reference(&x, &w, &[], p);
        for (a, r) in y.data().iter().zip(y_ref.data()) {
            assert!((a - r).abs() < 1e-4);
        }
    }
}
