//! # seneca-tensor
//!
//! A small, self-contained NCHW tensor library powering the SENECA
//! reproduction. It provides:
//!
//! * [`Shape4`] / [`Tensor`] — dense `f32` tensors in NCHW layout backed by a
//!   flat `Vec<f32>`;
//! * [`QTensor`] — symmetric INT8 quantized tensors with power-of-two scales,
//!   matching the arithmetic of the Xilinx DPU;
//! * parallel compute kernels (rayon): blocked GEMM ([`gemm`]), `im2col`
//!   convolution ([`conv`]), transpose convolution ([`tconv`]), max pooling
//!   ([`pool`]), batch normalisation ([`norm`]) and activations
//!   ([`activation`]) — each with the backward passes needed for training.
//!
//! The crate is deliberately free of `unsafe`: data-race freedom comes from
//! rayon's parallel iterators, per the workspace HPC guidelines.

pub mod activation;
pub mod conv;
pub mod gemm;
pub mod igemm;
pub mod im2col;
pub mod norm;
pub mod pool;
pub mod quantized;
pub mod shape;
pub mod tconv;
pub mod tensor;
pub mod zero;

pub use quantized::{Bitwidth, QTensor, QTensorView};
pub use shape::Shape4;
pub use tensor::{Tensor, TensorView};
pub use zero::Zero;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::activation::{relu, relu_backward, relu_into, softmax_channels};
    pub use crate::conv::{conv2d, conv2d_backward, conv2d_fused_into, conv2d_into, Conv2dParams};
    pub use crate::norm::{batchnorm_backward, batchnorm_forward, BnState};
    pub use crate::pool::{maxpool2x2, maxpool2x2_backward, maxpool2x2_into};
    pub use crate::quantized::{QTensor, QTensorView};
    pub use crate::shape::Shape4;
    pub use crate::tconv::{tconv2x2, tconv2x2_backward, tconv2x2_into};
    pub use crate::tensor::{Tensor, TensorView};
}
