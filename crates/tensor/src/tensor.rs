//! Dense `f32` NCHW tensors.

use crate::shape::Shape4;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense rank-4 `f32` tensor in NCHW layout.
///
/// The storage is a flat `Vec<f32>`; see [`Shape4::idx`] for the layout.
/// Tensors are value types: cloning copies the buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape4,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: Shape4) -> Self {
        Self { shape, data: vec![0.0; shape.len()] }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Shape4, value: f32) -> Self {
        Self { shape, data: vec![value; shape.len()] }
    }

    /// Wraps an existing buffer. Panics if the buffer length mismatches.
    pub fn from_vec(shape: Shape4, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Self { shape, data }
    }

    /// He-normal initialisation (for conv weights shaped `[C_out, C_in, K, K]`
    /// stored as NCHW with `n = C_out`).
    pub fn he_normal<R: Rng>(shape: Shape4, rng: &mut R) -> Self {
        let fan_in = (shape.c * shape.h * shape.w).max(1) as f32;
        let std = (2.0 / fan_in).sqrt();
        let data = (0..shape.len())
            .map(|_| {
                // Box-Muller keeps us independent of rand_distr here.
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Immutable access to the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by 4-D coordinates.
    #[inline(always)]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.idx(n, c, h, w)]
    }

    /// Mutable element access by 4-D coordinates.
    #[inline(always)]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let i = self.shape.idx(n, c, h, w);
        &mut self.data[i]
    }

    /// Reinterprets the tensor with a new shape of identical length.
    pub fn reshaped(mut self, shape: Shape4) -> Self {
        assert_eq!(self.shape.len(), shape.len(), "reshape must preserve length");
        self.shape = shape;
        self
    }

    /// Returns a new tensor `self + other` (elementwise; shapes must match).
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape);
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { shape: self.shape, data }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Maximum absolute value (0.0 for empty tensors).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Slices out batch item `n` as a new `1xCxHxW` tensor.
    pub fn batch_item(&self, n: usize) -> Tensor {
        assert!(n < self.shape.n);
        let chw = self.shape.chw();
        Tensor { shape: self.shape.with_n(1), data: self.data[n * chw..(n + 1) * chw].to_vec() }
    }

    /// Stacks `1xCxHxW` tensors along the batch dimension.
    pub fn stack_batch(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let s0 = items[0].shape;
        let mut data = Vec::with_capacity(s0.chw() * items.len());
        for t in items {
            assert_eq!(t.shape.with_n(1), s0.with_n(1), "stack requires equal CxHxW");
            assert_eq!(t.shape.n, 1, "stack_batch expects batch-1 items");
            data.extend_from_slice(&t.data);
        }
        Tensor { shape: s0.with_n(items.len()), data }
    }

    /// Concatenates two tensors along the channel axis (equal N, H, W).
    pub fn concat_channels(a: &Tensor, b: &Tensor) -> Tensor {
        let (sa, sb) = (a.shape, b.shape);
        assert_eq!((sa.n, sa.h, sa.w), (sb.n, sb.h, sb.w), "concat requires equal N/H/W");
        let mut out = Tensor::zeros(Shape4::new(sa.n, sa.c + sb.c, sa.h, sa.w));
        concat_channels_into(sa, &a.data, sb, &b.data, &mut out.data);
        out
    }

    /// Splits a channel-concatenated gradient back into the two parts.
    pub fn split_channels(&self, c_first: usize) -> (Tensor, Tensor) {
        let s = self.shape;
        assert!(c_first <= s.c);
        let c_second = s.c - c_first;
        let mut a = Tensor::zeros(Shape4::new(s.n, c_first, s.h, s.w));
        let mut b = Tensor::zeros(Shape4::new(s.n, c_second, s.h, s.w));
        let hw = s.hw();
        for n in 0..s.n {
            let src = n * s.chw();
            a.data[n * c_first * hw..(n + 1) * c_first * hw]
                .copy_from_slice(&self.data[src..src + c_first * hw]);
            b.data[n * c_second * hw..(n + 1) * c_second * hw]
                .copy_from_slice(&self.data[src + c_first * hw..src + s.chw()]);
        }
        (a, b)
    }
}

/// Channel concatenation into a caller-owned output slice
/// ([`Tensor::concat_channels`] semantics; every output element is written).
/// Returns the output shape.
pub fn concat_channels_into(
    sa: Shape4,
    a: &[f32],
    sb: Shape4,
    b: &[f32],
    out: &mut [f32],
) -> Shape4 {
    assert_eq!((sa.n, sa.h, sa.w), (sb.n, sb.h, sb.w), "concat requires equal N/H/W");
    assert_eq!(a.len(), sa.len(), "first input buffer/shape mismatch");
    assert_eq!(b.len(), sb.len(), "second input buffer/shape mismatch");
    let out_shape = Shape4::new(sa.n, sa.c + sb.c, sa.h, sa.w);
    assert_eq!(out.len(), out_shape.len(), "output buffer size");
    let hw = sa.hw();
    for n in 0..sa.n {
        let dst_base = n * out_shape.chw();
        out[dst_base..dst_base + sa.c * hw].copy_from_slice(&a[n * sa.chw()..(n + 1) * sa.chw()]);
        out[dst_base + sa.c * hw..dst_base + (sa.c + sb.c) * hw]
            .copy_from_slice(&b[n * sb.chw()..(n + 1) * sb.chw()]);
    }
    out_shape
}

/// A borrowed NCHW tensor: a [`Shape4`] over a slice of a larger buffer.
///
/// The planned executors hand out views into their per-worker slot arenas;
/// a view stays valid only until the arena runs another frame. Callers that
/// need an owning value copy out with [`TensorView::to_tensor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorView<'a> {
    shape: Shape4,
    data: &'a [f32],
}

impl<'a> TensorView<'a> {
    /// Wraps a slice. Panics if the slice length mismatches the shape.
    pub fn new(shape: Shape4, data: &'a [f32]) -> Self {
        assert_eq!(data.len(), shape.len(), "view buffer/shape mismatch");
        Self { shape, data }
    }

    /// The view's shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// The underlying flat buffer.
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Copies the view into an owning [`Tensor`].
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.shape, self.data.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_full() {
        let t = Tensor::zeros(Shape4::new(1, 2, 3, 4));
        assert_eq!(t.data().len(), 24);
        assert!(t.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full(Shape4::new(1, 1, 2, 2), 3.5);
        assert!(f.data().iter().all(|&v| v == 3.5));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_length() {
        let _ = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn he_normal_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = Tensor::he_normal(Shape4::new(64, 32, 3, 3), &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.data().len() as f32;
        let expected_var = 2.0 / (32.0 * 9.0);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var / expected_var - 1.0).abs() < 0.1, "var {var} vs {expected_var}");
    }

    #[test]
    fn concat_then_split_roundtrips() {
        let a = Tensor::from_vec(Shape4::new(2, 1, 2, 2), (0..8).map(|v| v as f32).collect());
        let b = Tensor::from_vec(Shape4::new(2, 2, 2, 2), (8..24).map(|v| v as f32).collect());
        let cat = Tensor::concat_channels(&a, &b);
        assert_eq!(cat.shape(), Shape4::new(2, 3, 2, 2));
        assert_eq!(cat.at(0, 0, 0, 0), 0.0);
        assert_eq!(cat.at(0, 1, 0, 0), 8.0);
        assert_eq!(cat.at(1, 0, 0, 0), 4.0);
        let (a2, b2) = cat.split_channels(1);
        assert_eq!(a2, a);
        assert_eq!(b2, b);
    }

    #[test]
    fn stack_and_slice_batch() {
        let items: Vec<Tensor> =
            (0..3).map(|i| Tensor::full(Shape4::new(1, 2, 2, 2), i as f32)).collect();
        let stacked = Tensor::stack_batch(&items);
        assert_eq!(stacked.shape(), Shape4::new(3, 2, 2, 2));
        for i in 0..3 {
            assert_eq!(stacked.batch_item(i), items[i]);
        }
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::full(Shape4::new(1, 1, 1, 4), 1.0);
        let b = Tensor::full(Shape4::new(1, 1, 1, 4), 2.0);
        a.axpy(0.5, &b);
        assert!(a.data().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        a.scale(2.0);
        assert!(a.data().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![1.0, -3.0, 2.0, 0.0]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.abs_max(), 3.0);
    }
}
