//! The additive-identity trait shared by the generic kernels.
//!
//! `im2col` padding and GEMM panel padding both need "the zero of the element
//! type" without pulling in a numerics crate; this two-line trait is the
//! entire requirement.

/// Types with an additive identity, usable as padding in packed buffers.
pub trait Zero: Copy {
    /// The additive identity (`0` / `0.0`).
    const ZERO: Self;
}

impl Zero for f32 {
    const ZERO: Self = 0.0;
}

impl Zero for f64 {
    const ZERO: Self = 0.0;
}

impl Zero for i8 {
    const ZERO: Self = 0;
}

impl Zero for i32 {
    const ZERO: Self = 0;
}
