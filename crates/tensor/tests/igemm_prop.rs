//! Property tests for the implicit-GEMM convolution route.
//!
//! `pack_b_im2col` gathers activation panels directly from the NCHW feature
//! map with the im2col index math computed inside the tile gather; the
//! scatter-fused transpose-conv stores write the stride-2 output from the
//! GEMM tile. Both must reproduce the materialized route — explicit
//! `im2col` (resp. GEMM-then-scatter) feeding the same packed kernels —
//! exactly: the packs produce byte-identical panels, so even the f32
//! results are BIT-exact, not tolerance-close. Geometries are drawn from
//! primes around the tile sizes with stride 1 and 2 and padding on/off so
//! every draw exercises the padding halo, the output-row segment walk and
//! the NR-wide panel tails.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use seneca_tensor::gemm::{igemm4_fused_packed, igemm_fused, sgemm_fused, GemmEpilogue, PackedA4};
use seneca_tensor::igemm::{
    igemm4_conv_packed, igemm4_tconv2x2_packed, igemm_conv, igemm_tconv2x2, sgemm_conv,
    sgemm_tconv2x2,
};
use seneca_tensor::im2col::{im2col, im2col_i8, ConvGeom};
use seneca_tensor::tconv::{repack_tconv_weights, scatter_tconv2x2};

fn rand_f32(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn rand_i8(len: usize, seed: u64) -> Vec<i8> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-128i32..128) as i8).collect()
}

/// INT4-range values stored as i8 (the W4A8 weight representation).
fn rand_i4(len: usize, seed: u64) -> Vec<i8> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-8i32..8) as i8).collect()
}

/// Prime spatial extents: never multiples of the NR panel width, so the
/// output-row segment walk always hits a panel-tail seam mid-row.
const DIMS: [usize; 6] = [1, 3, 5, 7, 11, 13];
/// Prime channel counts (odd C_out exercises MR row tails).
const CHANS: [usize; 5] = [1, 2, 3, 5, 7];

/// Materialized-route f32 conv: explicit im2col + fused packed GEMM.
fn conv_f32_materialized(
    m: usize,
    w: &[f32],
    geom: &ConvGeom,
    x: &[f32],
    epi: GemmEpilogue<'_>,
    out: &mut [f32],
) {
    let (k, n) = (geom.col_rows(), geom.col_cols());
    let mut col = vec![0.0f32; k * n];
    im2col(geom, x, &mut col);
    sgemm_fused(m, k, n, w, &col, out, epi);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// f32 conv: implicit pack == materialized im2col, bit for bit, over
    /// random geometry (stride 1/2, pad 0/1, k 1..3, prime H/W/C).
    #[test]
    fn conv_f32_implicit_matches_materialized(
        hi in 0usize..6, wi in 0usize..6, ci in 0usize..5, mi in 0usize..5,
        k in 1usize..4, pad in 0usize..2, stride in 1usize..3,
        bias_bit in 0u32..2, relu_bit in 0u32..2, seed in 0u64..1000
    ) {
        let (h, w, c_in, m) = (DIMS[hi], DIMS[wi], CHANS[ci], CHANS[mi]);
        // Keep the kernel within the padded extent (h, w >= 1 so k = 1
        // always fits).
        let k = k.min(h + 2 * pad).min(w + 2 * pad);
        let geom = ConvGeom { c_in, h, w, k, pad, stride };
        let (kdim, n) = (geom.col_rows(), geom.col_cols());
        let wt = rand_f32(m * kdim, seed);
        let x = rand_f32(c_in * h * w, seed + 1);
        let b = rand_f32(m, seed + 2);
        let epi = match (bias_bit == 1, relu_bit == 1) {
            (false, false) => GemmEpilogue::None,
            (true, false) => GemmEpilogue::Bias(&b),
            (_, true) => GemmEpilogue::BiasRelu(&b),
        };
        let mut y = vec![0.0f32; m * n];
        let mut y_ref = vec![0.0f32; m * n];
        sgemm_conv(m, &wt, &geom, &x, &mut y, epi);
        conv_f32_materialized(m, &wt, &geom, &x, epi, &mut y_ref);
        // Byte-identical panels + the same kernel => identical float ops.
        prop_assert_eq!(
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "c{}x{}x{} k{} p{} s{}", c_in, h, w, k, pad, stride
        );
    }

    /// i8 conv: implicit pack == materialized im2col through the fused
    /// requantise epilogue, arbitrary shift/relu.
    #[test]
    fn conv_i8_implicit_matches_materialized(
        hi in 0usize..6, wi in 0usize..6, ci in 0usize..5, mi in 0usize..5,
        k in 1usize..4, pad in 0usize..2, stride in 1usize..3,
        shift in -2i32..10, relu_bit in 0u32..2, seed in 0u64..1000
    ) {
        let (h, w, c_in, m) = (DIMS[hi], DIMS[wi], CHANS[ci], CHANS[mi]);
        // Keep the kernel within the padded extent (h, w >= 1 so k = 1
        // always fits).
        let k = k.min(h + 2 * pad).min(w + 2 * pad);
        let relu = relu_bit == 1;
        let geom = ConvGeom { c_in, h, w, k, pad, stride };
        let (kdim, n) = (geom.col_rows(), geom.col_cols());
        let wt = rand_i8(m * kdim, seed);
        let x = rand_i8(c_in * h * w, seed + 1);
        let bias: Vec<i32> = (0..m as i32).map(|i| i * 91 - 777).collect();
        let mut y = vec![0i8; m * n];
        igemm_conv(m, &wt, &geom, &x, &bias, shift, relu, &mut y);
        let mut col = vec![0i8; kdim * n];
        im2col_i8(&geom, &x, &mut col);
        let mut y_ref = vec![0i8; m * n];
        igemm_fused(m, kdim, n, &wt, &col, &bias, shift, relu, &mut y_ref);
        prop_assert_eq!(y, y_ref, "c{}x{}x{} k{} p{} s{}", c_in, h, w, k, pad, stride);
    }

    /// W4A8 conv: implicit pack through the nibble kernel == materialized
    /// im2col through the same nibble kernel.
    #[test]
    fn conv_i4_implicit_matches_materialized(
        hi in 0usize..6, wi in 0usize..6, ci in 0usize..5, mi in 0usize..5,
        k in 1usize..4, pad in 0usize..2, stride in 1usize..3,
        shift in -2i32..10, relu_bit in 0u32..2, seed in 0u64..1000
    ) {
        let (h, w, c_in, m) = (DIMS[hi], DIMS[wi], CHANS[ci], CHANS[mi]);
        // Keep the kernel within the padded extent (h, w >= 1 so k = 1
        // always fits).
        let k = k.min(h + 2 * pad).min(w + 2 * pad);
        let relu = relu_bit == 1;
        let geom = ConvGeom { c_in, h, w, k, pad, stride };
        let (kdim, n) = (geom.col_rows(), geom.col_cols());
        let wt = rand_i4(m * kdim, seed);
        let pa = PackedA4::pack(m, kdim, &wt);
        let x = rand_i8(c_in * h * w, seed + 1);
        let bias: Vec<i32> = (0..m as i32).map(|i| i * 57 - 333).collect();
        let mut y = vec![0i8; m * n];
        igemm4_conv_packed(&pa, &geom, &x, &bias, shift, relu, &mut y);
        let mut col = vec![0i8; kdim * n];
        im2col_i8(&geom, &x, &mut col);
        let mut y_ref = vec![0i8; m * n];
        igemm4_fused_packed(&pa, n, &col, &bias, shift, relu, &mut y_ref);
        prop_assert_eq!(y, y_ref, "c{}x{}x{} k{} p{} s{}", c_in, h, w, k, pad, stride);
    }

    /// f32 tconv: scatter-fused store == GEMM into a pre-scatter buffer
    /// followed by the explicit stride-2 scatter, bit for bit.
    #[test]
    fn tconv_f32_scatter_fused_matches_materialized(
        hi in 0usize..6, wi in 0usize..6, ci in 0usize..5, coi in 0usize..5,
        bias_bit in 0u32..2, seed in 0u64..1000
    ) {
        let (h, w, c_in, c_out) = (DIMS[hi], DIMS[wi], CHANS[ci], CHANS[coi]);
        let (m, n) = (4 * c_out, h * w);
        let wt = rand_f32(c_in * c_out * 4, seed);
        let mut wk = vec![0.0f32; m * c_in];
        repack_tconv_weights(c_in, c_out, &wt, &mut wk);
        let x = rand_f32(c_in * n, seed + 1);
        let bias4: Vec<f32> = if bias_bit == 1 {
            let b = rand_f32(c_out, seed + 2);
            (0..m).map(|i| b[i / 4]).collect()
        } else {
            Vec::new()
        };
        let mut y = vec![0.0f32; c_out * 4 * n];
        sgemm_tconv2x2(c_out, c_in, &wk, &x, h, w, &bias4, &mut y);
        let epi = if bias4.is_empty() { GemmEpilogue::None } else { GemmEpilogue::Bias(&bias4) };
        let mut ytmp = vec![0.0f32; m * n];
        sgemm_fused(m, c_in, n, &wk, &x, &mut ytmp, epi);
        let mut y_ref = vec![0.0f32; c_out * 4 * n];
        scatter_tconv2x2(c_out, h, w, &ytmp, &mut y_ref);
        prop_assert_eq!(
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "cin{} cout{} {}x{}", c_in, c_out, h, w
        );
    }

    /// i8 tconv: scatter-fused requantising store == fused GEMM + explicit
    /// scatter.
    #[test]
    fn tconv_i8_scatter_fused_matches_materialized(
        hi in 0usize..6, wi in 0usize..6, ci in 0usize..5, coi in 0usize..5,
        shift in -2i32..10, relu_bit in 0u32..2, seed in 0u64..1000
    ) {
        let (h, w, c_in, c_out) = (DIMS[hi], DIMS[wi], CHANS[ci], CHANS[coi]);
        let relu = relu_bit == 1;
        let (m, n) = (4 * c_out, h * w);
        let wt = rand_i8(c_in * c_out * 4, seed);
        let mut wk = vec![0i8; m * c_in];
        repack_tconv_weights(c_in, c_out, &wt, &mut wk);
        let x = rand_i8(c_in * n, seed + 1);
        let bias4: Vec<i32> = (0..m as i32).map(|i| (i / 4) * 37 - 111).collect();
        let mut y = vec![0i8; c_out * 4 * n];
        igemm_tconv2x2(c_out, c_in, &wk, &x, h, w, &bias4, shift, relu, &mut y);
        let mut ytmp = vec![0i8; m * n];
        igemm_fused(m, c_in, n, &wk, &x, &bias4, shift, relu, &mut ytmp);
        let mut y_ref = vec![0i8; c_out * 4 * n];
        scatter_tconv2x2(c_out, h, w, &ytmp, &mut y_ref);
        prop_assert_eq!(y, y_ref, "cin{} cout{} {}x{} shift {}", c_in, c_out, h, w, shift);
    }

    /// W4A8 tconv: the nibble scatter-fused store == nibble GEMM + explicit
    /// scatter.
    #[test]
    fn tconv_i4_scatter_fused_matches_materialized(
        hi in 0usize..6, wi in 0usize..6, ci in 0usize..5, coi in 0usize..5,
        shift in -2i32..10, relu_bit in 0u32..2, seed in 0u64..1000
    ) {
        let (h, w, c_in, c_out) = (DIMS[hi], DIMS[wi], CHANS[ci], CHANS[coi]);
        let relu = relu_bit == 1;
        let (m, n) = (4 * c_out, h * w);
        let wt = rand_i4(c_in * c_out * 4, seed);
        let mut wk = vec![0i8; m * c_in];
        repack_tconv_weights(c_in, c_out, &wt, &mut wk);
        let pa = PackedA4::pack(m, c_in, &wk);
        let x = rand_i8(c_in * n, seed + 1);
        let bias4: Vec<i32> = (0..m as i32).map(|i| (i / 4) * 53 - 222).collect();
        let mut y = vec![0i8; c_out * 4 * n];
        igemm4_tconv2x2_packed(&pa, &x, h, w, &bias4, shift, relu, &mut y);
        let mut ytmp = vec![0i8; m * n];
        igemm4_fused_packed(&pa, n, &x, &bias4, shift, relu, &mut ytmp);
        let mut y_ref = vec![0i8; c_out * 4 * n];
        scatter_tconv2x2(c_out, h, w, &ytmp, &mut y_ref);
        prop_assert_eq!(y, y_ref, "cin{} cout{} {}x{} shift {}", c_in, c_out, h, w, shift);
    }
}
