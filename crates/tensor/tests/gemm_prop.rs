//! Property tests for the packed GEMM engine's remainder handling.
//!
//! The micro-kernel only ever sees full `MR x NR` tiles — edge handling lives
//! entirely in the zero-padded packing and the clipped store. These tests
//! hammer exactly that seam: random `(m, k, n)` drawn to be deliberately NOT
//! multiples of the tile sizes (odd sizes, primes, 1xKx1 slivers), checked
//! against the naive reference kernels.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use seneca_tensor::gemm::{
    igemm, igemm4_fused_packed, igemm_fused, igemm_reference, pack_nibble_pairs, sgemm, sgemm_at,
    sgemm_bt, sgemm_reference, unpack_nibble_pairs, PackedA4, MR, NR,
};
use seneca_tensor::quantized::requantize_i32;

fn rand_f32(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn rand_i8(len: usize, seed: u64) -> Vec<i8> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-128i32..128) as i8).collect()
}

/// INT4-range values stored as i8 (the W4A8 weight representation).
fn rand_i4(len: usize, seed: u64) -> Vec<i8> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-8i32..8) as i8).collect()
}

/// Primes around and above the tile sizes (MR = 8, NR = 16), so every draw
/// exercises partial tiles in both dimensions.
const PRIMES: [usize; 8] = [1, 3, 7, 13, 17, 23, 31, 53];

fn close(a: &[f32], b: &[f32]) -> Result<(), (usize, f32, f32)> {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if (x - y).abs() > 1e-4 * (1.0 + x.abs().max(y.abs())) {
            return Err((i, *x, *y));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed sgemm == reference for sizes that straddle tile boundaries.
    #[test]
    fn sgemm_remainder_tiles_match_reference(
        mi in 0usize..8, ki in 0usize..8, ni in 0usize..8, seed in 0u64..1000
    ) {
        let (m, k, n) = (PRIMES[mi], PRIMES[ki], PRIMES[ni]);
        // Primes are never multiples of MR/NR (except 1 trivially dividing).
        prop_assert!(m == 1 || m % MR != 0);
        prop_assert!(n == 1 || n % NR != 0);
        let a = rand_f32(m * k, seed);
        let b = rand_f32(k * n, seed + 1);
        let mut c = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        sgemm_reference(m, k, n, &a, &b, &mut c_ref);
        if let Err((i, x, y)) = close(&c, &c_ref) {
            prop_assert!(false, "{m}x{k}x{n} idx {i}: {x} vs {y}");
        }
    }

    /// The degenerate 1xKx1 sliver (single row, single column) for any K.
    #[test]
    fn sgemm_one_by_k_by_one(k in 1usize..600, seed in 0u64..1000) {
        let a = rand_f32(k, seed);
        let b = rand_f32(k, seed + 1);
        let mut c = vec![0.0; 1];
        let mut c_ref = vec![0.0; 1];
        sgemm(1, k, 1, &a, &b, &mut c);
        sgemm_reference(1, k, 1, &a, &b, &mut c_ref);
        prop_assert!((c[0] - c_ref[0]).abs() < 1e-4 * (1.0 + c_ref[0].abs()), "{} vs {}", c[0], c_ref[0]);
    }

    /// Transposed-A variant over off-tile sizes.
    #[test]
    fn sgemm_at_remainder_tiles_match_reference(
        mi in 0usize..8, ki in 0usize..8, ni in 0usize..8, seed in 0u64..1000
    ) {
        let (m, k, n) = (PRIMES[mi], PRIMES[ki], PRIMES[ni]);
        let a_t = rand_f32(k * m, seed); // stored k x m
        let b = rand_f32(k * n, seed + 1);
        let mut a = vec![0.0; m * k];
        for i in 0..m {
            for kk in 0..k {
                a[i * k + kk] = a_t[kk * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        sgemm_at(m, k, n, &a_t, &b, &mut c);
        sgemm_reference(m, k, n, &a, &b, &mut c_ref);
        if let Err((i, x, y)) = close(&c, &c_ref) {
            prop_assert!(false, "{m}x{k}x{n} idx {i}: {x} vs {y}");
        }
    }

    /// Transposed-B variant over off-tile sizes.
    #[test]
    fn sgemm_bt_remainder_tiles_match_reference(
        mi in 0usize..8, ki in 0usize..8, ni in 0usize..8, seed in 0u64..1000
    ) {
        let (m, k, n) = (PRIMES[mi], PRIMES[ki], PRIMES[ni]);
        let a = rand_f32(m * k, seed);
        let b_t = rand_f32(n * k, seed + 1); // stored n x k
        let mut b = vec![0.0; k * n];
        for kk in 0..k {
            for j in 0..n {
                b[kk * n + j] = b_t[j * k + kk];
            }
        }
        let mut c = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        sgemm_bt(m, k, n, &a, &b_t, &mut c);
        sgemm_reference(m, k, n, &a, &b, &mut c_ref);
        if let Err((i, x, y)) = close(&c, &c_ref) {
            prop_assert!(false, "{m}x{k}x{n} idx {i}: {x} vs {y}");
        }
    }

    /// Packed igemm is BIT-EXACT against the naive kernel for arbitrary
    /// off-tile sizes — i32 addition is associative, so no tolerance.
    #[test]
    fn igemm_packed_is_bit_exact(
        m in 1usize..40, k in 1usize..80, n in 1usize..40, seed in 0u64..1000
    ) {
        let a = rand_i8(m * k, seed);
        let b = rand_i8(k * n, seed + 1);
        let mut c = vec![0i32; m * n];
        let mut c_ref = vec![0i32; m * n];
        igemm(m, k, n, &a, &b, &mut c);
        igemm_reference(m, k, n, &a, &b, &mut c_ref);
        prop_assert_eq!(c, c_ref, "{}x{}x{}", m, k, n);
    }

    /// The fused requantise epilogue is bit-exact against the unfused
    /// accumulate-then-requantise sequence for arbitrary shifts and sizes.
    #[test]
    fn igemm_fused_is_bit_exact(
        m in 1usize..24, k in 1usize..60, n in 1usize..24,
        shift in -2i32..10, relu_bit in 0u32..2, seed in 0u64..1000
    ) {
        let relu = relu_bit == 1;
        let a = rand_i8(m * k, seed);
        let b = rand_i8(k * n, seed + 1);
        let bias: Vec<i32> = (0..m as i32).map(|i| i * 91 - 777).collect();
        let mut acc = vec![0i32; m * n];
        igemm_reference(m, k, n, &a, &b, &mut acc);
        let expect: Vec<i8> = acc
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let q = requantize_i32(v + bias[i / n], shift);
                if relu { q.max(0) } else { q }
            })
            .collect();
        let mut fused = vec![0i8; m * n];
        igemm_fused(m, k, n, &a, &b, &bias, shift, relu, &mut fused);
        prop_assert_eq!(fused, expect, "{}x{}x{} shift {} relu {}", m, k, n, shift, relu);
    }

    /// Nibble packing round-trips every INT4 value: low nibble first, sign
    /// extension recovers the exact i8 in `[-8, 7]`.
    #[test]
    fn int4_nibble_pack_roundtrips(pairs in 0usize..600, seed in 0u64..1000) {
        let src = rand_i4(2 * pairs, seed);
        let packed = pack_nibble_pairs(&src);
        prop_assert_eq!(packed.len(), pairs);
        let mut back = vec![0i8; 2 * pairs];
        unpack_nibble_pairs(&packed, &mut back);
        prop_assert_eq!(back, src);
    }

    /// The nibble-packed INT4 micro-kernel is BIT-EXACT against unpacking to
    /// i8 panels and running the INT8 fused kernel, on prime (off-tile)
    /// remainder shapes with arbitrary shift/relu epilogues. Both kernels
    /// accumulate in ascending-k order in i32, so no tolerance.
    #[test]
    fn igemm4_remainder_tiles_bit_exact_vs_unpacked_i8(
        mi in 0usize..8, ki in 0usize..8, ni in 0usize..8,
        shift in -2i32..10, relu_bit in 0u32..2, seed in 0u64..1000
    ) {
        let (m, k, n) = (PRIMES[mi], PRIMES[ki], PRIMES[ni]);
        prop_assert!(m == 1 || m % MR != 0);
        prop_assert!(n == 1 || n % NR != 0);
        let relu = relu_bit == 1;
        let a = rand_i4(m * k, seed);
        let b = rand_i8(k * n, seed + 1);
        let bias: Vec<i32> = (0..m as i32).map(|i| i * 57 - 333).collect();

        let pa4 = PackedA4::pack(m, k, &a);
        // panel_len is exactly half the widened i8 panels (same zero padding).
        prop_assert_eq!(pa4.panel_len() * 2, pa4.unpack().panel_len());
        let mut c4 = vec![0i8; m * n];
        igemm4_fused_packed(&pa4, n, &b, &bias, shift, relu, &mut c4);

        let mut c8 = vec![0i8; m * n];
        igemm_fused(m, k, n, &a, &b, &bias, shift, relu, &mut c8);
        prop_assert_eq!(c4, c8, "{}x{}x{} shift {} relu {}", m, k, n, shift, relu);
    }
}
