//! Property tests on kernel-level algebraic invariants.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use seneca_tensor::conv::{conv2d, Conv2dParams};
use seneca_tensor::norm::{batchnorm_inference, fold_bn_into_conv, BnState};
use seneca_tensor::tconv::{tconv2x2, tconv2x2_backward};
use seneca_tensor::{Shape4, Tensor};

fn rand_tensor(shape: Shape4, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::from_vec(shape, (0..shape.len()).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Convolution is linear in its input: conv(ax + by) == a conv(x) + b conv(y)
    /// (bias-free).
    #[test]
    fn conv_is_linear(
        c_in in 1usize..4, c_out in 1usize..4, hw in 3usize..8,
        a in -2.0f32..2.0, b in -2.0f32..2.0, seed in 0u64..500
    ) {
        let p = Conv2dParams::SAME_3X3;
        let x = rand_tensor(Shape4::new(1, c_in, hw, hw), seed);
        let y = rand_tensor(Shape4::new(1, c_in, hw, hw), seed + 1);
        let w = rand_tensor(Shape4::new(c_out, c_in, 3, 3), seed + 2);
        let mut combo = x.clone();
        combo.scale(a);
        combo.axpy(b, &y);
        let lhs = conv2d(&combo, &w, &[], p);
        let mut rhs = conv2d(&x, &w, &[], p);
        rhs.scale(a);
        rhs.axpy(b, &conv2d(&y, &w, &[], p));
        for (u, v) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((u - v).abs() < 1e-3 * (1.0 + u.abs()));
        }
    }

    /// The transpose convolution is the adjoint of the downsampling conv it
    /// mirrors: <tconv(x), y> == <x, tconv_backward_dx-like pairing>.
    #[test]
    fn tconv_forward_backward_adjoint(
        c_in in 1usize..4, c_out in 1usize..4, hw in 2usize..6, seed in 0u64..500
    ) {
        let x = rand_tensor(Shape4::new(1, c_in, hw, hw), seed);
        let w = rand_tensor(Shape4::new(c_in, c_out, 2, 2), seed + 1);
        let y = rand_tensor(Shape4::new(1, c_out, hw * 2, hw * 2), seed + 2);
        // <tconv(x), y> == <x, dX(y)> where dX is the backward data pass.
        let fx = tconv2x2(&x, &w, &[]);
        let grads = tconv2x2_backward(&x, &w, &y);
        let lhs: f64 = fx.data().iter().zip(y.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let rhs: f64 = x.data().iter().zip(grads.dx.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// BN folding is exact at inference for arbitrary BN statistics.
    #[test]
    fn bn_folding_exact(
        c_out in 1usize..5, seed in 0u64..500,
        mean in -2.0f32..2.0, var in 0.1f32..4.0, gamma in -2.0f32..2.0
    ) {
        let p = Conv2dParams::SAME_3X3;
        let x = rand_tensor(Shape4::new(1, 2, 6, 6), seed);
        let w = rand_tensor(Shape4::new(c_out, 2, 3, 3), seed + 1);
        let bias: Vec<f32> = (0..c_out).map(|i| i as f32 * 0.1).collect();
        let mut bn = BnState::new(c_out);
        for i in 0..c_out {
            bn.running_mean[i] = mean + i as f32 * 0.3;
            bn.running_var[i] = var + i as f32 * 0.2;
            bn.gamma[i] = gamma;
            bn.beta[i] = 0.25 - i as f32 * 0.1;
        }
        let reference = batchnorm_inference(&conv2d(&x, &w, &bias, p), &bn);
        let (w2, b2) = fold_bn_into_conv(&w, &bias, &bn);
        let folded = conv2d(&x, &w2, &b2, p);
        for (a, b) in reference.data().iter().zip(folded.data()) {
            prop_assert!((a - b).abs() < 2e-4 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    /// concat/split roundtrips for arbitrary channel splits.
    #[test]
    fn concat_split_roundtrip(
        ca in 1usize..5, cb in 1usize..5, hw in 1usize..6, seed in 0u64..500
    ) {
        let a = rand_tensor(Shape4::new(2, ca, hw, hw), seed);
        let b = rand_tensor(Shape4::new(2, cb, hw, hw), seed + 1);
        let cat = Tensor::concat_channels(&a, &b);
        prop_assert_eq!(cat.shape().c, ca + cb);
        let (a2, b2) = cat.split_channels(ca);
        prop_assert_eq!(a2, a);
        prop_assert_eq!(b2, b);
    }

    /// Max pooling never invents values: every output equals some input in
    /// its window and is >= all of them.
    #[test]
    fn maxpool_selects_window_max(c in 1usize..4, hw in 1usize..6, seed in 0u64..500) {
        use seneca_tensor::pool::maxpool2x2;
        let x = rand_tensor(Shape4::new(1, c, hw * 2, hw * 2), seed);
        let out = maxpool2x2(&x);
        let s = x.shape();
        for cc in 0..c {
            for oy in 0..hw {
                for ox in 0..hw {
                    let m = out.y.at(0, cc, oy, ox);
                    let window = [
                        x.at(0, cc, 2 * oy, 2 * ox),
                        x.at(0, cc, 2 * oy, 2 * ox + 1),
                        x.at(0, cc, 2 * oy + 1, 2 * ox),
                        x.at(0, cc, 2 * oy + 1, 2 * ox + 1),
                    ];
                    prop_assert!(window.contains(&m));
                    prop_assert!(window.iter().all(|&v| v <= m));
                }
            }
        }
        let _ = s;
    }
}
