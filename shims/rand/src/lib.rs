//! Offline drop-in replacement for the subset of the `rand` crate API this
//! workspace uses. The build environment has no access to crates.io, so the
//! workspace resolves `rand` to this path crate instead.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically solid for simulation
//! and test workloads. Bit streams differ from upstream `rand`'s ChaCha12
//! `StdRng`; nothing in this workspace depends on upstream's exact streams,
//! only on determinism per seed.

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the only constructor pattern the workspace uses is
/// `StdRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` seed, expanded via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample of a type's "standard" distribution (uniform bits for ints,
    /// `[0, 1)` for floats, fair coin for `bool`).
    #[allow(clippy::wrong_self_convention)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Bernoulli sample.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard {
    /// Samples one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types with a uniform range sampler. The blanket impls below tie
/// `Range<T>`/`RangeInclusive<T>` to `SampleRange<T>` generically so type
/// inference can flow from the surrounding expression into range literals
/// (e.g. `base_f32 + rng.gen_range(-0.1..0.1)`), as with upstream `rand`.
pub trait UniformSample: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: UniformSample> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: UniformSample> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Multiply-shift bounded sampling; bias < 2^-64 * span.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as $wide).wrapping_add(draw as $wide) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                (lo as $wide).wrapping_add(draw as $wide) as $t
            }
        }
    )*};
}
range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                let u = <$t as Standard>::from_rng(rng);
                lo + (hi - lo) * u
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let u = <$t as Standard>::from_rng(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
range_float!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            Self { s }
        }
    }

    /// Alias: the workspace treats small and standard generators identically.
    pub type SmallRng = StdRng;
}

/// Sequence helpers (`SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random element selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            let i: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let j: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&j));
        }
    }

    #[test]
    fn float_uniform_covers_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }
}
