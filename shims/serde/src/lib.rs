//! Offline drop-in replacement for the subset of `serde` this workspace
//! uses. The build environment has no crates.io access, so the workspace
//! resolves `serde` to this path crate.
//!
//! Instead of upstream's visitor-based zero-copy architecture, this shim
//! round-trips everything through one self-describing [`Value`] tree (the
//! same data model `serde_json` exposes). `#[derive(Serialize, Deserialize)]`
//! is provided by the companion `serde_derive` proc-macro and generates
//! `to_value` / `from_value` implementations with serde_json's externally
//! tagged enum representation, so on-disk artifacts look exactly like
//! upstream's JSON output.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model (mirrors `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (accepts every number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric view as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) => u64::try_from(v).ok(),
            Value::U64(v) => Some(v),
            Value::F64(v) if v.fract() == 0.0 && (0.0..1.9e19).contains(&v) => Some(v as u64),
            _ => None,
        }
    }

    /// Object field lookup (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Array element lookup.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(index))
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&Value::Null)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::I64(v as i64)
            }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        i64::try_from(v).map(Value::I64).unwrap_or(Value::U64(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Deserialization error (re-exported as `serde_json::Error`).
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::new(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
serde_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64().ok_or_else(|| DeError::new("expected unsigned integer"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(f64::NAN), // serde_json renders non-finite floats as null
            _ => v.as_f64().ok_or_else(|| DeError::new("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        if items.len() != N {
            return Err(DeError::new(format!("expected array of length {N}")));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! tuple_impls {
    ($($len:literal => ($($name:ident . $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                if items.len() != $len {
                    return Err(DeError::new(concat!("expected ", $len, "-tuple")));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
tuple_impls!(
    2 => (A.0, B.1),
    3 => (A.0, B.1, C.2),
    4 => (A.0, B.1, C.2, D.3)
);

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected string"))?;
        // A `&'static str` can only come from leaked storage; acceptable for
        // the small constant tables this workspace round-trips.
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Derive-macro support: object field lookup with a good error message.
#[doc(hidden)]
pub fn __field<'v>(obj: &'v [(String, Value)], name: &str, ty: &str) -> Result<&'v Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}` for {ty}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::I64(3)),
            ("b".into(), Value::Array(vec![Value::Str("x".into())])),
        ]);
        assert_eq!(v["a"].as_i64(), Some(3));
        assert_eq!(v["b"][0], "x");
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(i8::from_value(&(-5i8).to_value()).unwrap(), -5);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f32::from_value(&1.25f32.to_value()).unwrap(), 1.25);
        let xs = vec![1i32, -2, 3];
        assert_eq!(Vec::<i32>::from_value(&xs.to_value()).unwrap(), xs);
        let opt: Option<String> = None;
        assert_eq!(Option::<String>::from_value(&opt.to_value()).unwrap(), None);
        let arr = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
    }
}
