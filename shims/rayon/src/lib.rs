//! Offline drop-in replacement for the subset of `rayon` this workspace
//! uses. Parallelism is real: indexed parallel iterators are recursively
//! `split_at` into contiguous parts, one per available core, and driven on
//! `std::thread::scope` workers. Inputs too small to split run inline on
//! the calling thread, so tiny kernels pay no spawn cost.

use std::sync::OnceLock;

pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Worker count: `RAYON_NUM_THREADS` if set, else `available_parallelism`.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// A splittable iterator with a known length — the minimal producer
/// contract every adapter and driver in this shim is built on.
pub trait IndexedParallelIterator: Sized + Send {
    type Item: Send;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Drains this part sequentially on the current thread.
    fn drive<F: FnMut(Self::Item)>(self, f: &mut F);
}

/// Consumer-side adapters; blanket-implemented for every producer.
pub trait ParallelIterator: IndexedParallelIterator {
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_parts(self, &|part| part.drive(&mut |item| f(item)));
    }

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Clone + Send,
    {
        Map { base: self, f }
    }

    fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self, offset: 0 }
    }

    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        let len = self.len();
        let mut parts = collect_parts(self, len);
        let mut out = Vec::with_capacity(len);
        for part in &mut parts {
            out.append(part);
        }
        C::from(out)
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send + std::iter::Sum<S>,
    {
        let parts = map_parts(self, &|part| {
            let mut items = Vec::new();
            part.drive(&mut |item| items.push(item));
            items.into_iter().sum::<S>()
        });
        parts.into_iter().sum()
    }
}

impl<I: IndexedParallelIterator> ParallelIterator for I {}

/// Splits `iter` into at most `current_num_threads()` contiguous parts and
/// runs `body` on each, using scoped threads when there is more than one.
fn run_parts<I, F>(iter: I, body: &F)
where
    I: IndexedParallelIterator,
    F: Fn(I) + Sync,
{
    map_parts(iter, &|part| body(part));
}

/// Like [`run_parts`] but gathers each part's result in part order.
fn map_parts<I, R, F>(iter: I, body: &F) -> Vec<R>
where
    I: IndexedParallelIterator,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let len = iter.len();
    let threads = current_num_threads();
    if len < 2 || threads < 2 {
        return vec![body(iter)];
    }
    let parts = split_even(iter, len.min(threads));
    std::thread::scope(|scope| {
        let handles: Vec<_> =
            parts.into_iter().map(|part| scope.spawn(move || body(part))).collect();
        handles.into_iter().map(|h| h.join().expect("rayon shim worker panicked")).collect()
    })
}

fn collect_parts<I: IndexedParallelIterator>(iter: I, _len: usize) -> Vec<Vec<I::Item>> {
    map_parts(iter, &|part| {
        let mut items = Vec::with_capacity(part.len());
        part.drive(&mut |item| items.push(item));
        items
    })
}

fn split_even<I: IndexedParallelIterator>(iter: I, parts: usize) -> Vec<I> {
    let mut out = Vec::with_capacity(parts);
    let mut rest = iter;
    for i in (1..=parts).rev() {
        let n = rest.len();
        if i == 1 || n == 0 {
            out.push(rest);
            break;
        }
        let take = n.div_ceil(i);
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
    }
    out
}

// ---------------------------------------------------------------------------
// Producers
// ---------------------------------------------------------------------------

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> IndexedParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (Self { slice: a, chunk: self.chunk }, Self { slice: b, chunk: self.chunk })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for chunk in self.slice.chunks_mut(self.chunk) {
            f(chunk);
        }
    }
}

pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> IndexedParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        (Self { slice: a, chunk: self.chunk }, Self { slice: b, chunk: self.chunk })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for chunk in self.slice.chunks(self.chunk) {
            f(chunk);
        }
    }
}

pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> IndexedParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (Self { slice: a }, Self { slice: b })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for item in self.slice.iter_mut() {
            f(item);
        }
    }
}

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (Self { slice: a }, Self { slice: b })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for item in self.slice.iter() {
            f(item);
        }
    }
}

pub struct ParRange {
    start: usize,
    end: usize,
}

impl IndexedParallelIterator for ParRange {
    type Item = usize;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (self.start + index).min(self.end);
        (Self { start: self.start, end: mid }, Self { start: mid, end: self.end })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for i in self.start..self.end {
            f(i);
        }
    }
}

pub struct IntoParIterVec<T> {
    items: Vec<T>,
}

impl<T: Send> IndexedParallelIterator for IntoParIterVec<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, Self { items: tail })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for item in self.items {
            f(item);
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> IndexedParallelIterator for Map<I, F>
where
    I: IndexedParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Clone + Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (Self { base: a, f: self.f.clone() }, Self { base: b, f: self.f })
    }

    fn drive<G: FnMut(Self::Item)>(self, g: &mut G) {
        let f = self.f;
        self.base.drive(&mut |item| g(f(item)));
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Self { a: a1, b: b1 }, Self { a: a2, b: b2 })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        let n = self.len();
        let mut bs = Vec::with_capacity(n);
        let mut b = self.b;
        if b.len() > n {
            b = b.split_at(n).0;
        }
        b.drive(&mut |item| bs.push(item));
        let mut b_iter = bs.into_iter();
        let mut a = self.a;
        if a.len() > n {
            a = a.split_at(n).0;
        }
        a.drive(&mut |item| {
            if let Some(bi) = b_iter.next() {
                f((item, bi));
            }
        });
    }
}

pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (Self { base: a, offset: self.offset }, Self { base: b, offset: self.offset + index })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        let mut i = self.offset;
        self.base.drive(&mut |item| {
            f((i, item));
            i += 1;
        });
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, chunk }
    }

    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk: usize) -> ParChunks<'_, T>;
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk: usize) -> ParChunks<'_, T> {
        assert!(chunk > 0, "chunk size must be non-zero");
        ParChunks { slice: self, chunk }
    }

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

pub trait IntoParallelIterator {
    type Iter: IndexedParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;
    type Item = usize;

    fn into_par_iter(self) -> ParRange {
        ParRange { start: self.start, end: self.end.max(self.start) }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = IntoParIterVec<T>;
    type Item = T;

    fn into_par_iter(self) -> IntoParIterVec<T> {
        IntoParIterVec { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_mut_covers_every_element_once() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x += 1 + i as u32;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, 1 + (i / 64) as u32);
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..517).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..517).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_pairs_by_index() {
        let a: Vec<usize> = (0..300).collect();
        let mut b = vec![0usize; 300];
        b.par_iter_mut().zip(a.par_iter()).for_each(|(dst, &src)| {
            *dst = src + 7;
        });
        assert!(b.iter().enumerate().all(|(i, &x)| x == i + 7));
    }

    #[test]
    fn for_each_runs_exactly_len_times() {
        let count = AtomicUsize::new(0);
        (0..999).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 999);
    }

    #[test]
    fn sum_matches_sequential() {
        let s: usize = (0..1000).into_par_iter().map(|i| i * i).sum();
        assert_eq!(s, (0..1000usize).map(|i| i * i).sum::<usize>());
    }
}
