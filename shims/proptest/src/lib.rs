//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses: the `proptest!` macro with per-block `ProptestConfig`, range and
//! `any::<T>()` strategies, `prop::collection::vec`, and the `prop_assert*`
//! macros. Cases are generated deterministically (seeded from the test name)
//! and failures panic immediately — there is no shrinking pass, so a failing
//! case reports the exact inputs that produced it instead of a minimised one.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    /// Upstream's `prelude::prop` module alias (for `prop::collection::vec`).
    pub use crate as prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub mod collection {
    use super::*;

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-block test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A source of random test values. Unlike upstream there is no value tree or
/// shrinking — `sample` draws one concrete value.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Constant strategy (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The full-domain strategy for `T` (uniform over all values).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Deterministic per-test seed: FNV-1a over the test path so each test gets
/// an independent, stable stream.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds the RNG driving one `proptest!` test function.
pub fn test_rng(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name))
}

/// Property assertion; panics with the failing expression (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }` becomes
/// a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..9, x in -1.5f32..2.5, b in 0u8..4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!(b < 4);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0i32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn any_covers_domain(x in any::<i32>(), _y in any::<bool>()) {
            // Smoke: the sample is a valid i32 by construction.
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::test_rng("same::name");
        let mut b = super::test_rng("same::name");
        let mut c = super::test_rng("other::name");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
