//! Offline drop-in replacement for the subset of `criterion` this workspace
//! uses. Benchmarks compile and run under `cargo bench`, printing a median
//! wall-clock time (and derived throughput) per benchmark. There is no
//! statistical analysis, outlier detection, or HTML report — the point is
//! that the bench targets build, run, and give a usable number offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Two-part benchmark identifier (`group_fn/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    pub fn new<F: ToString, P: ToString>(function: F, parameter: P) -> Self {
        Self { function: Some(function.to_string()), parameter: parameter.to_string() }
    }

    pub fn from_parameter<P: ToString>(parameter: P) -> Self {
        Self { function: None, parameter: parameter.to_string() }
    }

    fn render(&self) -> String {
        match &self.function {
            Some(f) => format!("{f}/{}", self.parameter),
            None => self.parameter.clone(),
        }
    }
}

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of adaptively chosen
    /// iteration counts.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: find an iteration count that takes ~2ms, capped so a
        // single sample never exceeds ~50ms even for slow routines.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                if elapsed >= Duration::from_millis(50) {
                    // Slow routine: reuse the calibration run as the sample.
                    self.samples.push(elapsed / iters as u32);
                }
                break;
            }
            iters *= 2;
        }
        while self.samples.len() < self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let per_iter = median.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("{name:<48} {:>12.3?}{rate}", median);
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    report(name, bencher.median(), throughput);
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.render());
        run_one(&name, self.sample_size, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares the benchmark entry list, mirroring upstream's macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; with
            // `harness = false` targets we simply ignore them. `--test`
            // means "smoke mode": run nothing, just prove the binary links.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke_group");
        g.sample_size(5);
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::new("sum", "64"), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }
}
