//! Offline drop-in replacement for the subset of `serde_json` this
//! workspace uses: `to_string` / `to_vec` / `from_str` / `from_slice`,
//! [`Value`], and the [`json!`] macro — all over the `serde` shim's value
//! tree. Output is compact JSON compatible with upstream `serde_json`.

pub use serde::DeError as Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like literal syntax: `null`, booleans,
/// nested arrays/objects, and arbitrary Rust expressions convertible via
/// `Value::from`. Object keys must be string literals.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_value!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_value {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_array!(@elems [] () $($tt)+)) };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => { $crate::Value::Object($crate::json_object!(@entries [] $($tt)+)) };
    ($other:expr) => { $crate::Value::from($other) };
}

// Array elements: munch token trees into the current element until a
// top-level comma (commas nested in (), [], {} are invisible at tt level).
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    (@elems [$($done:expr,)*] ($($cur:tt)+) , $($rest:tt)+) => {
        $crate::json_array!(@elems [$($done,)* $crate::json_value!($($cur)+),] () $($rest)+)
    };
    (@elems [$($done:expr,)*] ($($cur:tt)+) $(,)?) => {
        vec![$($done,)* $crate::json_value!($($cur)+)]
    };
    (@elems [$($done:expr,)*] ($($cur:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array!(@elems [$($done,)*] ($($cur)* $next) $($rest)*)
    };
}

// Object entries: `"key": <value tokens>` separated by top-level commas.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    (@entries [$($done:expr,)*] $key:literal : $($rest:tt)+) => {
        $crate::json_object!(@val [$($done,)*] ($key) () $($rest)+)
    };
    (@entries [$($done:expr,)*]) => {
        vec![$($done,)*]
    };
    (@val [$($done:expr,)*] ($key:literal) ($($cur:tt)+) , $($rest:tt)*) => {
        $crate::json_object!(@entries
            [$($done,)* (::std::string::String::from($key), $crate::json_value!($($cur)+)),]
            $($rest)*)
    };
    (@val [$($done:expr,)*] ($key:literal) ($($cur:tt)+)) => {
        vec![$($done,)* (::std::string::String::from($key), $crate::json_value!($($cur)+))]
    };
    (@val [$($done:expr,)*] ($key:literal) ($($cur:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object!(@val [$($done,)*] ($key) ($($cur)* $next) $($rest)*)
    };
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null"); // upstream serde_json behaviour
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::new("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_nesting() {
        let v = json!({
            "name": "seneca",
            "fps": 335.4,
            "threads": 4,
            "ok": true,
            "tags": ["edge", "int8"],
            "nothing": null
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["name"], "seneca");
        assert_eq!(back["tags"].as_array().unwrap().len(), 2);
        assert_eq!(back["threads"].as_i64(), Some(4));
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1f64, -3.5e-9, 1.0, 12345.678901234567] {
            let s = to_string(&x).unwrap();
            let y: f64 = from_str(&s).unwrap();
            assert_eq!(x, y, "{s}");
        }
        let f = 0.3f32;
        let s = to_string(&f).unwrap();
        let g: f32 = from_str(&s).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quoted\"\tand \\ backslash \u{1}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn vec_of_i8_roundtrips() {
        let xs: Vec<i8> = (-128i16..=127).map(|v| v as i8).collect();
        let back: Vec<i8> = from_str(&to_string(&xs).unwrap()).unwrap();
        assert_eq!(back, xs);
    }
}
