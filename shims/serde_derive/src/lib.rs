//! `#[derive(Serialize, Deserialize)]` for the offline `serde` shim.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; this macro parses the item's token stream by hand. Supported
//! shapes — which cover every derive in this workspace — are:
//!
//! * structs with named fields (plus `#[serde(skip)]` / `#[serde(skip, default)]`),
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   upstream serde's default JSON representation).
//!
//! Anything else (generics, tuple structs, other `#[serde]` attributes)
//! panics with a clear message at expansion time rather than silently
//! producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skips one attribute (`#[...]`) if present at `i`; returns whether the
/// attribute was a `#[serde(...)]` containing `skip`.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> Option<bool> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {}
        _ => return None,
    }
    let group = match tokens.get(*i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
        _ => return None,
    };
    *i += 2;
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let is_serde =
        matches!(&inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return Some(false);
    }
    let args = match inner.get(1) {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return Some(false),
    };
    let mut skip = false;
    for t in args {
        if let TokenTree::Ident(id) = &t {
            match id.to_string().as_str() {
                "skip" => skip = true,
                "default" => {}
                other => panic!("serde shim derive: unsupported #[serde({other})] attribute"),
            }
        }
    }
    Some(skip)
}

/// Skips `pub`, `pub(crate)`, `pub(super)` etc. at `i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Parses `name: Type, name: Type, ...` (named-struct or struct-variant body).
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        while let Some(s) = skip_attr(&tokens, &mut i) {
            skip |= s;
        }
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field `{name}`, found `{other}` (tuple structs are unsupported)"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts the comma-separated types of a tuple-variant payload.
fn tuple_arity(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    arity += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while skip_attr(&tokens, &mut i).is_some() {}
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`Name = expr`); serialization is by
        // variant name, so the value itself is irrelevant here.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => {
                panic!("serde shim derive: unexpected `{other}` after variant `{name}`")
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        while skip_attr(&tokens, &mut i).is_some() {}
        skip_visibility(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break
            }
            Some(_) => i += 1,
            None => panic!("serde shim derive: no struct/enum found"),
        }
    }
    let is_struct = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected item name, found `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is unsupported");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!(
            "serde shim derive: `{name}` has no braced body (tuple/unit structs are unsupported)"
        ),
    };
    if is_struct {
        Item::Struct { name, fields: parse_fields(body) }
    } else {
        Item::Enum { name, variants: parse_variants(body) }
    }
}

fn serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{n}\"), \
                     ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}\
                 ::serde::Value::Object(__fields)\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "Self::{vn}(__f0) => ::serde::Value::Object(vec![\
                         (::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "Self::{vn}({}) => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                        let binds: Vec<String> =
                            live.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in &live {
                            pushes.push_str(&format!(
                                "__fields.push((::std::string::String::from(\"{n}\"), \
                                 ::serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        let pattern = if binds.is_empty() {
                            "..".to_string()
                        } else {
                            format!("{}, ..", binds.join(", "))
                        };
                        arms.push_str(&format!(
                            "Self::{vn} {{ {pattern} }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n{pushes}\
                             ::serde::Value::Object(vec![(::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(__fields))])\n}}\n",
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 #[allow(unused_variables)]\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn struct_body_ctor(ty: &str, fields: &[Field], obj_expr: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
        } else {
            inits.push_str(&format!(
                "{n}: ::serde::Deserialize::from_value(::serde::__field({obj_expr}, \"{n}\", \
                 \"{ty}\")?)?,\n",
                n = f.name
            ));
        }
    }
    inits
}

fn deserialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits = struct_body_ctor(name, fields, "__obj");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __obj = match __v {{\n\
                 ::serde::Value::Object(o) => o.as_slice(),\n\
                 _ => return ::std::result::Result::Err(::serde::DeError::new(\"expected object for {name}\")),\n\
                 }};\n\
                 ::std::result::Result::Ok(Self {{\n{inits}}})\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms
                        .push_str(&format!("\"{vn}\" => ::std::result::Result::Ok(Self::{vn}),\n")),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = __payload.as_array().ok_or_else(|| \
                             ::serde::DeError::new(\"expected array payload for {name}::{vn}\"))?;\n\
                             if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::new(\
                             \"wrong arity for {name}::{vn}\"));\n}}\n\
                             ::std::result::Result::Ok(Self::{vn}({}))\n}}\n",
                            gets.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits = struct_body_ctor(&format!("{name}::{vn}"), fields, "__obj");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __obj = match __payload {{\n\
                             ::serde::Value::Object(o) => o.as_slice(),\n\
                             _ => return ::std::result::Result::Err(::serde::DeError::new(\
                             \"expected object payload for {name}::{vn}\")),\n}};\n\
                             ::std::result::Result::Ok(Self::{vn} {{\n{inits}}})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __payload) = &__o[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n}}\n}}\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                 \"expected string or single-key object for {name}\")),\n}}\n}}\n}}\n"
            )
        }
    }
}

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    serialize_impl(&item).parse().expect("serde shim derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    deserialize_impl(&item).parse().expect("serde shim derive: generated invalid Deserialize impl")
}
