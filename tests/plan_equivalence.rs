//! Property tests for the plan-based executors: for random U-Net
//! configurations, the liveness-planned FP32 and INT8 executors must be
//! bit-identical to the naive allocate-per-node paths, across repeated
//! frames through the same scratch arena (stale slot contents must never
//! leak into a frame).

use proptest::prelude::*;
use rand::SeedableRng;
use seneca_nn::graph::Graph;
use seneca_nn::unet::{UNet, UNetConfig};
use seneca_quant::{fuse, quantize_post_training, PtqConfig};
use seneca_tensor::{Shape4, Tensor};

fn random_net(depth: usize, base_filters: usize, seed: u64) -> UNet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cfg = UNetConfig { depth, base_filters, in_channels: 1, num_classes: 6, dropout: 0.0 };
    UNet::new(cfg, &mut rng)
}

fn random_frame(shape: Shape4, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut img = Tensor::he_normal(shape, &mut rng);
    for v in img.data_mut() {
        *v = v.clamp(-1.0, 1.0);
    }
    img
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// FP32: planned executor == naive executor, bit for bit, over several
    /// frames through one reused scratch arena.
    #[test]
    fn planned_fp32_matches_naive(
        depth in 1usize..=3,
        base_filters in 2usize..6,
        scale in 1usize..3,
        seed in 0u64..1000,
    ) {
        let net = random_net(depth, base_filters, seed);
        let graph = Graph::from_unet(&net, "prop");
        let side = (1 << depth) * scale.max(1);
        let shape = Shape4::new(1, 1, side, side);
        let mut scratch = graph.make_scratch(shape);
        for frame in 0..2u64 {
            let img = random_frame(shape, seed.wrapping_mul(31).wrapping_add(frame));
            let naive = graph.execute(&img);
            let planned = graph.execute_into(&img, &mut scratch);
            prop_assert_eq!(planned.shape(), naive.shape());
            prop_assert_eq!(planned.data(), naive.data());
        }
    }

    /// INT8: the planned executor runs the exact same integer arithmetic as
    /// the naive one — outputs and fix positions are identical.
    #[test]
    fn planned_int8_matches_naive(
        depth in 1usize..=3,
        base_filters in 2usize..6,
        seed in 0u64..1000,
    ) {
        let net = random_net(depth, base_filters, seed);
        let fg = fuse(&Graph::from_unet(&net, "prop"));
        let side = 1 << (depth + 1);
        let shape = Shape4::new(1, 1, side, side);
        let calib = vec![random_frame(shape, seed ^ 0xABCD)];
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        let mut scratch = qg.make_scratch(shape);
        for frame in 0..2u64 {
            let q = qg.quantize_input(&random_frame(shape, seed.wrapping_mul(17).wrapping_add(frame)));
            let naive = qg.execute(&q);
            let planned = qg.execute_into(&q, &mut scratch);
            prop_assert_eq!(planned.fix_pos(), naive.fix_pos());
            prop_assert_eq!(planned.shape(), naive.shape());
            prop_assert_eq!(planned.data(), naive.data());
        }
    }

    /// The plan never maps two simultaneously-live values to one slot, and
    /// its arena never exceeds the naive per-node total.
    #[test]
    fn plan_is_valid_and_never_larger_than_naive(
        depth in 1usize..=3,
        base_filters in 2usize..6,
        seed in 0u64..1000,
    ) {
        let net = random_net(depth, base_filters, seed);
        let graph = Graph::from_unet(&net, "prop");
        let shape = Shape4::new(1, 1, 1 << depth, 1 << depth);
        let plan = graph.plan(shape);
        plan.assert_valid();
        prop_assert!(plan.peak_arena_elems() <= plan.total_activation_elems());
        prop_assert!(plan.n_slots() <= plan.n_nodes());
    }
}
