//! Cross-crate data-pipeline integration: synthetic cohort → preprocessing →
//! training samples → calibration sets, with the statistical properties the
//! paper's method depends on.

use seneca_data::calibration::{manual_calibration, random_calibration, PAPER_MANUAL_TARGET};
use seneca_data::dataset::{ScanKind, SplitKind, SyntheticCtOrg, SyntheticCtOrgConfig};
use seneca_data::preprocess::preprocess;
use seneca_data::stats::{cohort_frequencies, FrequencyAccumulator};
use seneca_data::volume::Organ;

fn cohort() -> SyntheticCtOrg {
    SyntheticCtOrg::new(SyntheticCtOrgConfig {
        n_patients: 28,
        slice_size: 64,
        slices_per_unit_z: 24.0,
        ..Default::default()
    })
}

#[test]
fn table1_shape_holds_on_the_cohort() {
    let f = cohort_frequencies(&cohort());
    // The class-imbalance structure the loss and calibration react to.
    assert!(f.of(Organ::Bones) + f.of(Organ::Lungs) > 55.0, "{}", f.table_row());
    assert!(f.of(Organ::Liver) > 10.0 && f.of(Organ::Liver) < 35.0);
    assert!(f.of(Organ::Bladder) < 6.0);
    assert!(f.of(Organ::Kidneys) < 10.0);
    assert!(f.of(Organ::Brain) < 1.0, "brain must be drastically under-represented");
}

#[test]
fn preprocessing_matches_paper_spec() {
    let ds = cohort();
    let vol = ds.volume(0);
    let mid = vol.slice(vol.depth / 2);
    let p = preprocess(&mid, 2);
    // Downsized by 2, rescaled into [-1, 1], brain removed.
    assert_eq!((p.width, p.height), (32, 32));
    assert!(p.pixels.iter().all(|v| (-1.0..=1.0).contains(v)));
    assert!(p.labels.iter().all(|&l| l != Organ::Brain.label()));
    // Saturation: extremes are hit (1% of pixels clamp to the bounds).
    let at_min = p.pixels.iter().filter(|&&v| v == -1.0).count();
    let at_max = p.pixels.iter().filter(|&&v| v == 1.0).count();
    assert!(at_min >= 1 && at_max >= 1, "percentile saturation must clamp tails");
}

#[test]
fn scan_mix_reproduces_bladder_and_brain_scarcity() {
    let ds = cohort();
    let mut chest = 0;
    let mut with_bladder = 0;
    for id in 0..ds.config.n_patients {
        match ds.scan_kind(id) {
            ScanKind::ChestOnly => chest += 1,
            _ => with_bladder += 1,
        }
    }
    assert!(chest > 0, "cohort needs chest-only scans");
    assert!(with_bladder > chest / 2, "most scans reach the pelvis");
}

#[test]
fn calibration_strategies_differ_as_in_table3() {
    let ds = cohort();
    let pool: Vec<_> = ds.slices(SplitKind::Train, 2).iter().map(|s| preprocess(s, 2)).collect();
    let rnd = random_calibration(&pool, 120, 9);
    let man = manual_calibration(&pool, 120, PAPER_MANUAL_TARGET, 9);

    // Pool distribution for reference.
    let mut acc = FrequencyAccumulator::new();
    for s in &pool {
        acc.add_slice(s);
    }
    let pool_f = acc.finish();

    // Random tracks the pool; manual lifts bladder+kidneys share.
    let drift_rnd = (rnd.frequencies.of(Organ::Bladder) - pool_f.of(Organ::Bladder)).abs();
    assert!(drift_rnd < 6.0, "random sampling drifted {drift_rnd:.1} points");
    let lift = man.frequencies.of(Organ::Bladder) + man.frequencies.of(Organ::Kidneys)
        - rnd.frequencies.of(Organ::Bladder)
        - rnd.frequencies.of(Organ::Kidneys);
    assert!(lift > 1.0, "manual sampling must lift rare organs (lift {lift:.2})");
}

#[test]
fn splits_are_patientwise_disjoint_and_deterministic() {
    let ds = cohort();
    let train = ds.patients(SplitKind::Train);
    let val = ds.patients(SplitKind::Val);
    let test = ds.patients(SplitKind::Test);
    assert_eq!(train.len() + val.len() + test.len(), ds.config.n_patients);
    for id in &test {
        assert!(!train.contains(id) && !val.contains(id));
    }
    // Same config -> same cohort, voxel for voxel.
    let ds2 = cohort();
    assert_eq!(ds.volume(5).hu, ds2.volume(5).hu);
    assert_eq!(ds.volume(5).labels, ds2.volume(5).labels);
}

#[test]
fn kidney_boundaries_are_low_contrast() {
    // The paper's motivation: organs sit in soft tissue at similar HU. Check
    // that kidney-vs-tissue contrast is much smaller than lung-vs-tissue.
    let ds = cohort();
    for id in 0..ds.config.n_patients {
        if ds.scan_kind(id) == ScanKind::ChestOnly {
            continue;
        }
        let vol = ds.volume(id);
        let mut kidney_hu = vec![];
        let mut lung_hu = vec![];
        let mut tissue_hu = vec![];
        for (i, &l) in vol.labels.iter().enumerate() {
            match l {
                l if l == Organ::Kidneys.label() => kidney_hu.push(vol.hu[i]),
                l if l == Organ::Lungs.label() => lung_hu.push(vol.hu[i]),
                0 if vol.hu[i] > -200.0 => tissue_hu.push(vol.hu[i]),
                _ => {}
            }
        }
        if kidney_hu.is_empty() || lung_hu.is_empty() {
            continue;
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let kidney_contrast = (mean(&kidney_hu) - mean(&tissue_hu)).abs();
        let lung_contrast = (mean(&lung_hu) - mean(&tissue_hu)).abs();
        assert!(
            kidney_contrast * 5.0 < lung_contrast,
            "patient {id}: kidney contrast {kidney_contrast:.0} HU vs lung {lung_contrast:.0} HU"
        );
        return; // one qualifying patient suffices
    }
    panic!("no total-body patient found");
}
