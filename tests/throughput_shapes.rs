//! The headline reproduction test: the *shape* of the paper's performance
//! results must hold on the simulated hardware. Covers Table IV orderings,
//! the abstract's 4.65x / 12.7x claims, Fig. 3 thread scaling and the
//! power envelope — all at the paper's 256x256 DPU geometry.
//!
//! Weights are random (throughput is weight-value independent), so no
//! training is needed and the test runs in seconds.

use rand::SeedableRng;
use seneca::backend::Backend;
use seneca_dpu::arch::DpuArch;
use seneca_dpu::runtime::{DpuRunner, RuntimeConfig, ThroughputReport};
use seneca_gpu::{GpuModel, GpuRunner};
use seneca_nn::graph::Graph;
use seneca_nn::unet::{ModelSize, UNet};
use seneca_quant::{fuse, quantize_post_training, PtqConfig};
use seneca_tensor::{Shape4, Tensor};
use std::sync::Arc;

fn throughputs(size: ModelSize, threads: usize) -> (ThroughputReport, ThroughputReport) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let net = UNet::from_size(size, &mut rng);
    let graph = Graph::from_unet(&net, size.label());
    let fg = fuse(&graph);
    let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng)];
    let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
    let input = Shape4::new(1, 1, 256, 256);
    let xm = Arc::new(seneca_dpu::compile(&qg, input, DpuArch::b4096_zcu104()));
    let dpu =
        DpuRunner::new(xm, RuntimeConfig { threads, ..Default::default() }).run_throughput(2000, 3);
    let gpu = GpuRunner::new(graph, GpuModel::rtx2060_mobile(), input).run_throughput(2000, 3);
    (dpu, gpu)
}

#[test]
fn table4_orderings_and_headline_ratios() {
    let results: Vec<(ThroughputReport, ThroughputReport)> =
        ModelSize::ALL.iter().map(|&s| throughputs(s, 4)).collect();
    let fps_int8: Vec<f64> = results.iter().map(|(d, _)| d.fps).collect();
    let fps_fp32: Vec<f64> = results.iter().map(|(_, g)| g.fps).collect();

    // DPU: 1M > 4M > 2M > 8M > 16M (Table IV INT8 column).
    assert!(fps_int8[0] > fps_int8[2], "1M > 4M: {fps_int8:?}");
    assert!(fps_int8[2] > fps_int8[1], "4M > 2M: {fps_int8:?}");
    assert!(fps_int8[1] > fps_int8[3], "2M > 8M: {fps_int8:?}");
    assert!(fps_int8[3] > fps_int8[4], "8M > 16M: {fps_int8:?}");

    // GPU: 2M > 1M > 4M > 8M > 16M (Table IV FP32 column).
    assert!(fps_fp32[1] > fps_fp32[0], "2M > 1M on GPU: {fps_fp32:?}");
    assert!(fps_fp32[0] > fps_fp32[2] && fps_fp32[2] > fps_fp32[3] && fps_fp32[3] > fps_fp32[4]);

    // Abstract: 1M speedup ≈ 4.65x, EE gain ≈ 12.7x. Accept the band
    // 3.5-6x and 9-16x (shape, not absolute).
    let speedup = fps_int8[0] / fps_fp32[0];
    assert!((3.5..6.0).contains(&speedup), "1M FPS speedup {speedup:.2}");
    let ee_gain = results[0].0.energy_efficiency() / results[0].1.energy_efficiency();
    assert!((9.0..16.0).contains(&ee_gain), "1M EE gain {ee_gain:.2}");

    // EE gain shrinks for bigger models (12.76x @1M vs 6.63x @16M).
    let ee_gain_16m = results[4].0.energy_efficiency() / results[4].1.energy_efficiency();
    assert!(ee_gain_16m < ee_gain * 0.75, "EE gain must shrink: {ee_gain:.1} -> {ee_gain_16m:.1}");

    // Power envelopes: FPGA 24-32 W, GPU ~78 W (Table IV).
    for (d, g) in &results {
        assert!((23.0..33.0).contains(&d.watt), "FPGA power {:.1} W", d.watt);
        assert!((75.0..81.0).contains(&g.watt), "GPU power {:.1} W", g.watt);
    }

    // Energy ratio: FPGA uses < 16% of the GPU joules per frame (paper:
    // 7.8%-15.14%).
    for (d, g) in &results {
        let ratio = (d.watt / d.fps) / (g.watt / g.fps);
        assert!(ratio < 0.20, "energy per frame ratio {ratio:.3}");
    }
}

#[test]
fn fig3_thread_scaling_saturates_at_four() {
    let ee: Vec<f64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            let (d, _) = throughputs(ModelSize::M1, t);
            d.energy_efficiency()
        })
        .collect();
    assert!(ee[1] > ee[0] * 1.2, "2 threads should clearly beat 1: {ee:?}");
    assert!(ee[2] > ee[1], "4 threads beat 2: {ee:?}");
    // §IV-B: "instantiating eight or more threads requires more power
    // without a gain in FPS".
    assert!(ee[3] < ee[2], "8 threads must not improve EE: {ee:?}");
}

#[test]
fn fp32_dpu_equivalent_would_not_fit_the_story() {
    // Sanity on Eq. 3 bookkeeping: EE == FPS/W == frames/J on both targets.
    let (d, g) = throughputs(ModelSize::M1, 4);
    assert!((d.energy_efficiency() - d.fps / d.watt).abs() < 1e-9);
    assert!((g.energy_efficiency() - g.fps / g.watt).abs() < 1e-9);
}

#[test]
fn throughput_sigma_is_paper_small() {
    // Table IV: σ(FPS) ≈ 0.1-0.5% of μ over 10 runs.
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let net = UNet::from_size(ModelSize::M1, &mut rng);
    let fg = fuse(&Graph::from_unet(&net, "1M"));
    let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 32, 32), &mut rng)];
    let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
    let xm =
        Arc::new(seneca_dpu::compile(&qg, Shape4::new(1, 1, 256, 256), DpuArch::b4096_zcu104()));
    let stats = DpuRunner::new(xm, RuntimeConfig::default()).throughput_repeated(2000, 10, 5);
    assert!(stats.fps_std / stats.fps_mean < 0.01, "σ/μ = {}", stats.fps_std / stats.fps_mean);
    assert_eq!(stats.runs.len(), 10);
}
