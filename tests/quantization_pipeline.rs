//! Cross-crate quantization-pipeline integration: graph export → fusion →
//! PTQ → compile → functional DPU execution, checked for consistency at
//! each hand-off.

use proptest::prelude::*;
use rand::SeedableRng;
use seneca::backend::{Backend, Fp32RefBackend, QuantRefBackend};
use seneca_dpu::arch::DpuArch;
use seneca_dpu::executor::{DpuCore, ExecMode};
use seneca_dpu::runtime::{DpuRunner, RuntimeConfig};
use seneca_gpu::{GpuModel, GpuRunner};
use seneca_nn::graph::Graph;
use seneca_nn::unet::{UNet, UNetConfig};
use seneca_quant::{fuse, quantize_post_training, PtqConfig};
use seneca_tensor::activation::softmax_channels;
use seneca_tensor::{Shape4, Tensor};
use std::sync::Arc;

fn tiny_net(seed: u64) -> UNet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    UNet::new(
        UNetConfig { depth: 2, base_filters: 6, in_channels: 1, num_classes: 6, dropout: 0.1 },
        &mut rng,
    )
}

fn calib_images(n: usize, size: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t = Tensor::he_normal(Shape4::new(1, 1, size, size), &mut rng);
            for v in t.data_mut() {
                *v = v.clamp(-1.0, 1.0);
            }
            t
        })
        .collect()
}

#[test]
fn every_handoff_preserves_predictions() {
    let net = tiny_net(1);
    let graph = Graph::from_unet(&net, "t");
    let fg = fuse(&graph);
    let calib = calib_images(8, 16, 2);
    let (qg, report) = quantize_post_training(&fg, &calib, &PtqConfig::default());
    let xm = seneca_dpu::compile(&qg, Shape4::new(1, 1, 16, 16), DpuArch::b4096_zcu104());

    for img in &calib[..4] {
        // Hand-off 1: UNet == Graph (probabilities).
        let p_unet = net.infer(img);
        let p_graph = graph.execute(img);
        for (a, b) in p_unet.data().iter().zip(p_graph.data()) {
            assert!((a - b).abs() < 1e-5);
        }
        // Hand-off 2: Graph == FusedGraph up to softmax.
        let p_fused = softmax_channels(&fg.execute(img));
        for (a, b) in p_graph.data().iter().zip(p_fused.data()) {
            assert!((a - b).abs() < 1e-4);
        }
        // Hand-off 3: QuantizedGraph argmax mostly agrees with FP32.
        let fp32_labels = seneca_tensor::activation::argmax_channels(&p_fused);
        let int8_labels = qg.predict(img);
        let agree = fp32_labels.iter().zip(&int8_labels).filter(|(a, b)| a == b).count();
        assert!(agree as f64 / fp32_labels.len() as f64 > 0.8, "agreement {agree}/256");
        // Hand-off 4: xmodel functional execution == QuantizedGraph, bit exact.
        let core = DpuCore::new(ExecMode::Functional);
        let input = xm.quantize_input(img);
        let out_core = core.run(&xm, &input).output.unwrap();
        let out_qg = qg.execute(&input);
        assert_eq!(out_core.data(), out_qg.data());
    }

    // The PTQ report covers every fused node and used all images.
    assert_eq!(report.fix_pos.len(), fg.nodes.len());
    assert_eq!(report.images_used, 8);
}

#[test]
fn quantization_works_across_resolutions() {
    // A model calibrated at one resolution still runs (and compiles) at
    // another — the xmodel is re-compiled per input geometry like VAI_C.
    let net = tiny_net(3);
    let fg = fuse(&Graph::from_unet(&net, "t"));
    let (qg, _) = quantize_post_training(&fg, &calib_images(4, 16, 4), &PtqConfig::default());
    for size in [16usize, 32, 64] {
        let xm = seneca_dpu::compile(&qg, Shape4::new(1, 1, size, size), DpuArch::b4096_zcu104());
        let img = &calib_images(1, size, 5)[0];
        let out =
            DpuCore::new(ExecMode::Functional).run(&xm, &xm.quantize_input(img)).output.unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 6, size, size));
        // Cost model scales superlinearly-ish with resolution.
        if size > 16 {
            let xm_prev = seneca_dpu::compile(
                &qg,
                Shape4::new(1, 1, size / 2, size / 2),
                DpuArch::b4096_zcu104(),
            );
            let big = seneca_dpu::perf::frame_cost(&xm, &xm.arch);
            let small = seneca_dpu::perf::frame_cost(&xm_prev, &xm_prev.arch);
            assert!(big.serial_ns > small.serial_ns);
        }
    }
}

#[test]
fn ffq_and_qat_do_not_beat_ptq_dramatically() {
    // §III-D: the paper tested FFQ and QAT "without achieving improvements
    // over PTQ". Verify FFQ stays within noise of PTQ on logit MSE.
    let net = tiny_net(6);
    let fg = fuse(&Graph::from_unet(&net, "t"));
    let calib = calib_images(6, 16, 7);
    let (qg_ptq, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
    let mut qg_ffq = qg_ptq.clone();
    let report = seneca_quant::finetune::fast_finetune(&mut qg_ffq, &fg, &calib, 4);
    let ptq_mse = seneca_quant::ptq::quantization_mse(&fg, &qg_ptq, &calib);
    let ffq_mse = seneca_quant::ptq::quantization_mse(&fg, &qg_ffq, &calib);
    assert!(ffq_mse <= ptq_mse * 1.2, "FFQ {ffq_mse} vs PTQ {ptq_mse}");
    assert!(report.mse_after <= report.mse_before * 1.2);
}

#[test]
fn fp32_ref_backend_matches_gpu_runner_bit_for_bit() {
    // The two FP32 backends share the inference graph, so their probability
    // maps must be identical to the last bit — not just close.
    let net = tiny_net(10);
    let graph = Graph::from_unet(&net, "t");
    let shape = Shape4::new(1, 1, 16, 16);
    let images = calib_images(4, 16, 11);

    let reference = Fp32RefBackend::new(graph.clone(), shape).with_threads(2);
    let gpu = GpuRunner::new(graph, GpuModel::rtx2060_mobile(), shape);
    let a = reference.infer_batch(&images);
    let b = gpu.infer_batch(&images);
    assert_eq!(a.len(), b.len());
    for (pa, pb) in a.iter().zip(&b) {
        assert_eq!(pa.labels, pb.labels);
        assert_eq!(pa.as_f32().unwrap().data(), pb.as_f32().unwrap().data());
    }
}

#[test]
fn quant_ref_backend_matches_dpu_runner_bit_for_bit() {
    // The host INT8 reference and the DPU functional runtime execute the same
    // quantized graph; their fixed-point logits must agree bit for bit.
    let net = tiny_net(12);
    let fg = fuse(&Graph::from_unet(&net, "t"));
    let calib = calib_images(6, 16, 13);
    let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
    let shape = Shape4::new(1, 1, 16, 16);

    let reference = QuantRefBackend::new(qg.clone(), shape).with_threads(2);
    let xm = Arc::new(seneca_dpu::compile(&qg, shape, DpuArch::b4096_zcu104()));
    let dpu = DpuRunner::new(xm, RuntimeConfig { threads: 3, ..Default::default() });
    let a = reference.infer_batch(&calib);
    let b = dpu.infer_batch(&calib);
    assert_eq!(a.len(), b.len());
    for (pa, pb) in a.iter().zip(&b) {
        assert_eq!(pa.labels, pb.labels);
        let (qa, qb) = (pa.as_i8().unwrap(), pb.as_i8().unwrap());
        assert_eq!(qa.fix_pos(), qb.fix_pos());
        assert_eq!(qa.data(), qb.data());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The streaming session is a pure reordering device: batch output must
    /// be invariant (order and content) under the worker thread count.
    #[test]
    fn session_output_invariant_under_thread_count(
        n_images in 1usize..6, threads in 2usize..5, seed in 0u64..100
    ) {
        let net = tiny_net(14);
        let fg = fuse(&Graph::from_unet(&net, "t"));
        let calib = calib_images(2, 16, 15);
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        let shape = Shape4::new(1, 1, 16, 16);
        let images = calib_images(n_images, 16, seed);

        let serial = QuantRefBackend::new(qg.clone(), shape).infer_batch(&images);
        let pooled =
            QuantRefBackend::new(qg, shape).with_threads(threads).infer_batch(&images);
        prop_assert_eq!(serial.len(), pooled.len());
        for (s, p) in serial.iter().zip(&pooled) {
            prop_assert_eq!(&s.labels, &p.labels);
            prop_assert_eq!(s.as_i8().unwrap().data(), p.as_i8().unwrap().data());
        }
    }
}

#[test]
fn misaligned_channel_models_compile_with_penalties() {
    // f=6 channels are ICP-misaligned; the compiler must record that and the
    // cost model must charge for it (the 2M-vs-4M mechanism of Table IV).
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let net6 = UNet::new(
        UNetConfig { depth: 2, base_filters: 6, in_channels: 1, num_classes: 6, dropout: 0.0 },
        &mut rng,
    );
    let net16 = UNet::new(
        UNetConfig { depth: 2, base_filters: 16, in_channels: 1, num_classes: 6, dropout: 0.0 },
        &mut rng,
    );
    let mk = |net: &UNet, name: &str| {
        let fg = fuse(&Graph::from_unet(net, name));
        let (qg, _) = quantize_post_training(&fg, &calib_images(2, 32, 9), &PtqConfig::default());
        seneca_dpu::compile(&qg, Shape4::new(1, 1, 64, 64), DpuArch::b4096_zcu104())
    };
    let xm6 = mk(&net6, "f6");
    let xm16 = mk(&net16, "f16");
    assert!(xm6.stats.misaligned_layers > xm16.stats.misaligned_layers);
    // Per-MAC cost of the misaligned model is higher.
    let c6 = seneca_dpu::perf::frame_cost(&xm6, &xm6.arch);
    let c16 = seneca_dpu::perf::frame_cost(&xm16, &xm16.arch);
    let per_mac6 = c6.serial_ns as f64 / xm6.stats.compute_cycles as f64;
    let per_mac16 = c16.serial_ns as f64 / xm16.stats.compute_cycles as f64;
    assert!(per_mac6 > per_mac16, "{per_mac6} vs {per_mac16}");
}
