//! End-to-end integration: the full Figure-1 pipeline at fast scale,
//! spanning every crate in the workspace.

use seneca::eval::evaluate_accuracy;
use seneca::{SenecaConfig, Workflow};
use seneca_nn::ModelSize;

#[test]
fn full_pipeline_trains_quantises_compiles_and_evaluates() {
    let wf = Workflow::new(SenecaConfig::fast());
    let data = wf.prepare_data();
    let dep = wf.deploy(ModelSize::M1, &data);

    // The xmodel is a real artifact: serialises, disassembles, carries the
    // input scale of §III-E.
    let xm = &dep.dpu_runner.xmodel;
    assert!(xm.stats.n_conv >= 17, "1M model: 17 conv+tconv layers, got {}", xm.stats.n_conv);
    let disasm = xm.disassemble();
    assert!(disasm.contains("CONV") && disasm.contains("DCONV") && disasm.contains("POOL"));
    assert!(xm.input_scale() > 0.0);
    let json = xm.to_json();
    let xm2 = seneca_dpu::XModel::from_json(&json).expect("xmodel roundtrips");
    assert_eq!(xm2.stats, xm.stats);

    // Training must have learned *something*: the trained model beats a
    // random-initialised one on global DSC.
    let trained = evaluate_accuracy(&|img| dep.gpu_runner.predict(img), &data);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(999);
    let random_net = seneca_nn::UNet::from_size(ModelSize::M1, &mut rng);
    let random = evaluate_accuracy(&|img| random_net.predict(img), &data);
    assert!(
        trained.global().mean > random.global().mean + 5.0,
        "trained {:.2}% vs random {:.2}%",
        trained.global().mean,
        random.global().mean
    );

    // INT8 deployment tracks the FP32 model (paper: quantisation is ~free).
    let int8 = evaluate_accuracy(&|img| dep.qgraph.predict(img), &data);
    let delta = (int8.global().mean - trained.global().mean).abs();
    assert!(delta < 12.0, "INT8 vs FP32 global DSC gap {delta:.2} too large");

    // TNR is high: the network does not hallucinate organs everywhere.
    assert!(int8.global_tnr().mean > 90.0, "TNR {:.2}", int8.global_tnr().mean);
}

#[test]
fn functional_dpu_runner_is_bit_exact_and_order_preserving() {
    let wf = Workflow::new(SenecaConfig::fast());
    let data = wf.prepare_data();
    let dep = wf.deploy(ModelSize::M1, &data);

    let images: Vec<_> =
        data.test_by_patient.iter().flat_map(|p| p.images.iter().cloned()).take(6).collect();
    // Multi-threaded VART path == single-shot quantized-graph execution.
    let outs = dep.dpu_runner.run_functional(&images);
    for (img, out) in images.iter().zip(&outs) {
        let reference = dep.qgraph.execute(&dep.qgraph.quantize_input(img));
        assert_eq!(out.data(), reference.data());
    }
}
