//! Property tests for the IR-lowered executors: for random U-Net
//! configurations, the single `seneca-ir` lowering must execute FP32 and
//! INT8 programs bit-identically to the naive allocate-per-node reference
//! paths, across repeated frames through the same scratch arena (stale slot
//! contents must never leak into a frame).

use proptest::prelude::*;
use rand::SeedableRng;
use seneca_ir::{lower, LowerOptions};
use seneca_nn::graph::Graph;
use seneca_nn::unet::{UNet, UNetConfig};
use seneca_quant::{
    calibrate, fuse, mixed::quantizable_nodes, quantize_from_calibration, quantize_post_training,
    Bitwidth, PtqConfig,
};
use seneca_tensor::{Shape4, Tensor};

fn random_net(depth: usize, base_filters: usize, seed: u64) -> UNet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cfg = UNetConfig { depth, base_filters, in_channels: 1, num_classes: 6, dropout: 0.0 };
    UNet::new(cfg, &mut rng)
}

fn random_frame(shape: Shape4, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut img = Tensor::he_normal(shape, &mut rng);
    for v in img.data_mut() {
        *v = v.clamp(-1.0, 1.0);
    }
    img
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// FP32: the IR-lowered executor (pack-once panels + liveness-planned
    /// arena) == naive executor, bit for bit, over several frames through
    /// one reused scratch arena.
    #[test]
    fn lowered_fp32_matches_naive(
        depth in 1usize..=3,
        base_filters in 2usize..6,
        scale in 1usize..3,
        seed in 0u64..1000,
    ) {
        let net = random_net(depth, base_filters, seed);
        let graph = Graph::from_unet(&net, "prop");
        let side = (1 << depth) * scale.max(1);
        let shape = Shape4::new(1, 1, side, side);
        let lowered = lower(graph.to_ir(), shape, &LowerOptions::reference());
        let mut scratch = lowered.make_scratch_f32();
        for frame in 0..2u64 {
            let img = random_frame(shape, seed.wrapping_mul(31).wrapping_add(frame));
            let naive = graph.execute(&img);
            let planned = lowered.execute_f32_into(&img, &mut scratch);
            prop_assert_eq!(planned.shape(), naive.shape());
            prop_assert_eq!(planned.data(), naive.data());
        }
    }

    /// INT8: the IR-lowered executor runs the exact same integer arithmetic
    /// as the naive one — outputs and fix positions are identical.
    #[test]
    fn lowered_int8_matches_naive(
        depth in 1usize..=3,
        base_filters in 2usize..6,
        seed in 0u64..1000,
    ) {
        let net = random_net(depth, base_filters, seed);
        let fg = fuse(&Graph::from_unet(&net, "prop"));
        let side = 1 << (depth + 1);
        let shape = Shape4::new(1, 1, side, side);
        let calib = vec![random_frame(shape, seed ^ 0xABCD)];
        let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
        let lowered = lower(qg.to_ir(), shape, &LowerOptions::reference());
        let mut scratch = lowered.make_scratch_i8();
        for frame in 0..2u64 {
            let q = qg.quantize_input(&random_frame(shape, seed.wrapping_mul(17).wrapping_add(frame)));
            let naive = qg.execute(&q);
            let planned = lowered.execute_i8_into(&q, &mut scratch);
            prop_assert_eq!(planned.fix_pos(), naive.fix_pos());
            prop_assert_eq!(planned.shape(), naive.shape());
            prop_assert_eq!(planned.data(), naive.data());
        }
    }

    /// Mixed W4/W8: for a random per-layer bitwidth assignment, the
    /// IR-lowered executor (nibble-packed panels where assigned) runs the
    /// exact same integer arithmetic as the naive per-node dispatch —
    /// outputs and fix positions are bit-identical.
    #[test]
    fn lowered_mixed_w4_matches_naive(
        depth in 1usize..=3,
        base_filters in 2usize..6,
        mask in 0u64..u64::MAX,
        seed in 0u64..1000,
    ) {
        let net = random_net(depth, base_filters, seed);
        let fg = fuse(&Graph::from_unet(&net, "prop"));
        let side = 1 << (depth + 1);
        let shape = Shape4::new(1, 1, side, side);
        let calib = vec![random_frame(shape, seed ^ 0xBEEF)];
        let report = calibrate(&fg, &calib, &PtqConfig::default());
        // Random subset of conv/tconv layers goes W4.
        let mut wbits = vec![Bitwidth::W8; fg.nodes.len()];
        for (bit, node) in quantizable_nodes(&fg).into_iter().enumerate() {
            if mask >> (bit % 64) & 1 == 1 {
                wbits[node] = Bitwidth::W4;
            }
        }
        let qg = quantize_from_calibration(&fg, &report, &wbits);
        let lowered = lower(qg.to_ir(), shape, &LowerOptions::reference());
        let mut scratch = lowered.make_scratch_i8();
        for frame in 0..2u64 {
            let q = qg.quantize_input(&random_frame(shape, seed.wrapping_mul(23).wrapping_add(frame)));
            let naive = qg.execute(&q);
            let planned = lowered.execute_i8_into(&q, &mut scratch);
            prop_assert_eq!(planned.fix_pos(), naive.fix_pos());
            prop_assert_eq!(planned.data(), naive.data());
        }
    }

    /// The plan never maps two simultaneously-live values to one slot, and
    /// its arena never exceeds the naive per-node total.
    #[test]
    fn plan_is_valid_and_never_larger_than_naive(
        depth in 1usize..=3,
        base_filters in 2usize..6,
        seed in 0u64..1000,
    ) {
        let net = random_net(depth, base_filters, seed);
        let graph = Graph::from_unet(&net, "prop");
        let shape = Shape4::new(1, 1, 1 << depth, 1 << depth);
        let plan = graph.to_ir().plan(shape);
        plan.assert_valid();
        prop_assert!(plan.peak_arena_elems() <= plan.total_activation_elems());
        prop_assert!(plan.n_slots() <= plan.n_nodes());
    }

    /// The frontend pipeline (BN fold + ReLU fuse + identity strip) is a
    /// semantic rewrite, not a bit-exact one — folded weights round-trip
    /// through f32 multiplies — so it must match the naive FP32 executor
    /// within tolerance, never exactly asserted bitwise.
    #[test]
    fn frontend_fp32_matches_naive_within_tolerance(
        depth in 1usize..=2,
        base_filters in 2usize..5,
        seed in 0u64..1000,
    ) {
        let net = random_net(depth, base_filters, seed);
        let graph = Graph::from_unet(&net, "prop");
        let side = 1 << (depth + 1);
        let shape = Shape4::new(1, 1, side, side);
        // strip_softmax stays false so both programs end in softmax.
        let opts = LowerOptions { fold_bn: true, fuse_relu: true, strip_softmax: false, pack_weights: true };
        let lowered = lower(graph.to_ir(), shape, &opts);
        let mut scratch = lowered.make_scratch_f32();
        let img = random_frame(shape, seed.wrapping_mul(13));
        let naive = graph.execute(&img);
        let fused = lowered.execute_f32_into(&img, &mut scratch);
        prop_assert_eq!(fused.shape(), naive.shape());
        for (a, b) in fused.data().iter().zip(naive.data()) {
            prop_assert!((a - b).abs() <= 1e-4, "fused {a} vs naive {b}");
        }
    }
}
