//! Property-based tests (proptest) on the core numeric invariants that the
//! whole reproduction rests on.

use proptest::prelude::*;
use seneca_metrics::seg::{confusion, dice, global_weighted_dice, tnr, tpr};
use seneca_tensor::gemm::{igemm, sgemm, sgemm_reference};
use seneca_tensor::im2col::{col2im, im2col, ConvGeom};
use seneca_tensor::pool::{maxpool2x2, maxpool2x2_backward};
use seneca_tensor::quantized::{choose_fix_pos, requantize_i32, QTensor};
use seneca_tensor::{Shape4, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel blocked GEMM matches the sequential reference.
    #[test]
    fn sgemm_matches_reference(
        m in 1usize..20, k in 1usize..40, n in 1usize..20,
        seed in 0u64..1000
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m*k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f32> = (0..k*n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut c1 = vec![0.0; m*n];
        let mut c2 = vec![0.0; m*n];
        sgemm(m, k, n, &a, &b, &mut c1);
        sgemm_reference(m, k, n, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// INT8 GEMM is exact integer arithmetic (associativity-independent).
    #[test]
    fn igemm_is_exact(
        m in 1usize..8, k in 1usize..32, n in 1usize..8,
        seed in 0u64..1000
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<i8> = (0..m*k).map(|_| rng.gen()).collect();
        let b: Vec<i8> = (0..k*n).map(|_| rng.gen()).collect();
        let mut c = vec![0i32; m*n];
        igemm(m, k, n, &a, &b, &mut c);
        for i in 0..m {
            for j in 0..n {
                let expect: i32 = (0..k).map(|kk| a[i*k+kk] as i32 * b[kk*n+j] as i32).sum();
                prop_assert_eq!(c[i*n+j], expect);
            }
        }
    }

    /// col2im is the exact adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
    #[test]
    fn im2col_adjoint(
        c in 1usize..4, h in 3usize..10, w in 3usize..10, seed in 0u64..1000
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let geom = ConvGeom { c_in: c, h, w, k: 3, pad: 1, stride: 1 };
        let x: Vec<f32> = (0..c*h*w).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f32> = (0..geom.col_rows()*geom.col_cols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut cx = vec![0.0; y.len()];
        im2col(&geom, &x, &mut cx);
        let mut ay = vec![0.0; x.len()];
        col2im(&geom, &y, &mut ay);
        let lhs: f64 = cx.iter().zip(&y).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let rhs: f64 = x.iter().zip(&ay).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
    }

    /// Quantise/dequantise error is bounded by half a quantum (no saturation
    /// when the fix position comes from choose_fix_pos).
    #[test]
    fn quantization_error_bounded(vals in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let n = vals.len();
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, n), vals);
        let fp = choose_fix_pos(t.abs_max());
        let q = QTensor::quantize(&t, fp);
        let d = q.dequantize();
        let quantum = (-fp as f32).exp2();
        for (a, b) in t.data().iter().zip(d.data()) {
            prop_assert!((a - b).abs() <= 0.5 * quantum + 1e-6);
        }
    }

    /// Requantisation never leaves the INT8 range and is monotone in the
    /// accumulator.
    #[test]
    fn requantize_saturating_and_monotone(acc in any::<i32>(), shift in 0i32..24) {
        let v = requantize_i32(acc, shift);
        prop_assert!((-128..=127).contains(&(v as i32)));
        if acc < i32::MAX - 1024 {
            let v2 = requantize_i32(acc + 1024, shift);
            prop_assert!(v2 >= v);
        }
    }

    /// Max-pool backward conserves gradient mass.
    #[test]
    fn maxpool_gradient_mass_conserved(
        c in 1usize..4, hw in 2usize..8, seed in 0u64..1000
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shape = Shape4::new(1, c, hw * 2, hw * 2);
        let x = Tensor::from_vec(shape, (0..shape.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let out = maxpool2x2(&x);
        let dy = Tensor::from_vec(out.y.shape(), (0..out.y.shape().len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let dx = maxpool2x2_backward(shape, &out, &dy);
        prop_assert!((dx.sum() - dy.sum()).abs() < 1e-3);
    }

    /// Dice is symmetric, bounded, and 1 iff prediction == truth (on maps
    /// where the class occurs).
    #[test]
    fn dice_properties(labels in prop::collection::vec(0u8..3, 8..64), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pred: Vec<u8> = labels.iter().map(|&l| if rng.gen_bool(0.7) { l } else { rng.gen_range(0..3) }).collect();
        for c in 0..3u8 {
            if let Some(d) = dice(&pred, &labels, c) {
                prop_assert!((0.0..=1.0).contains(&d));
                // Symmetry.
                prop_assert_eq!(dice(&labels, &pred, c), Some(d));
            }
        }
        prop_assert_eq!(dice(&labels, &labels, 1).unwrap_or(1.0), 1.0);
        if let Some(g) = global_weighted_dice(&pred, &labels, 2) {
            prop_assert!((0.0..=1.0).contains(&g));
        }
    }

    /// TPR/TNR and the confusion matrix are consistent: counts partition the
    /// pixels.
    #[test]
    fn confusion_partitions_pixels(labels in prop::collection::vec(0u8..4, 4..64), c in 0u8..4) {
        let pred: Vec<u8> = labels.iter().rev().cloned().collect();
        let conf = confusion(&pred, &labels, c);
        prop_assert_eq!(
            (conf.tp + conf.fp + conf.fn_ + conf.tn) as usize,
            labels.len()
        );
        if let (Some(t), Some(n)) = (tpr(&pred, &labels, c), tnr(&pred, &labels, c)) {
            prop_assert!((0.0..=1.0).contains(&t));
            prop_assert!((0.0..=1.0).contains(&n));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Softmax output is a probability distribution for any finite input.
    #[test]
    fn softmax_is_distribution(
        c in 2usize..7, hw in 1usize..5,
        seed in 0u64..1000
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shape = Shape4::new(1, c, hw, hw);
        let x = Tensor::from_vec(shape, (0..shape.len()).map(|_| rng.gen_range(-30.0f32..30.0)).collect());
        let y = seneca_tensor::activation::softmax_channels(&x);
        for pix in 0..hw * hw {
            let sum: f32 = (0..c).map(|ch| y.data()[ch * hw * hw + pix]).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    /// The DES closed network conserves jobs and keeps time monotone for
    /// arbitrary service times.
    #[test]
    fn des_conserves_jobs(
        pop in 1usize..6, jobs in 0usize..40,
        s1 in 1u64..1000, s2 in 1u64..1000
    ) {
        use seneca_hwsim::{simulate_closed_pipeline, Resource, StageSpec};
        let res = [Resource::new("a", 2), Resource::new("b", 1)];
        let stages = [StageSpec { resource: 0 }, StageSpec { resource: 1 }];
        let rep = simulate_closed_pipeline(&res, &stages, pop, jobs, |j, s| {
            if s == 0 { s1 + j as u64 % 7 } else { s2 }
        });
        prop_assert_eq!(rep.completed, jobs);
        prop_assert_eq!(rep.completion_times_ns.len(), jobs);
        for w in rep.completion_times_ns.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Busy time never exceeds capacity x makespan.
        prop_assert!(rep.busy_ns[0] <= 2 * rep.makespan_ns);
        prop_assert!(rep.busy_ns[1] <= rep.makespan_ns);
    }
}
