//! Artifact-format integration: NIfTI export, PPM rendering, xmodel JSON —
//! the on-disk surfaces a downstream user touches.

use rand::SeedableRng;
use seneca::render::{hstack, render_ct, render_overlay, write_ppm};
use seneca_data::nifti::{read_nifti, write_nifti, NiftiChannel};
use seneca_data::preprocess::preprocess;
use seneca_data::{SyntheticCtOrg, SyntheticCtOrgConfig};
use seneca_dpu::arch::DpuArch;
use seneca_nn::graph::Graph;
use seneca_nn::unet::{UNet, UNetConfig};
use seneca_quant::{fuse, quantize_post_training, PtqConfig};
use seneca_tensor::{Shape4, Tensor};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("seneca-artifacts-{}-{name}", std::process::id()))
}

#[test]
fn nifti_export_matches_viewer_expectations() {
    let ds = SyntheticCtOrg::new(SyntheticCtOrgConfig {
        n_patients: 1,
        slice_size: 32,
        slices_per_unit_z: 10.0,
        ..Default::default()
    });
    let vol = ds.volume(0);
    let ct = tmp("ct.nii");
    let seg = tmp("seg.nii");
    write_nifti(&ct, &vol, NiftiChannel::Intensity).unwrap();
    write_nifti(&seg, &vol, NiftiChannel::Labels).unwrap();
    let (info_ct, hu) = read_nifti(&ct).unwrap();
    let (info_seg, labels) = read_nifti(&seg).unwrap();
    assert_eq!((info_ct.width, info_ct.height, info_ct.depth), (32, 32, vol.depth));
    assert_eq!(info_ct.datatype, 16);
    assert_eq!(info_seg.datatype, 2);
    assert_eq!(hu.len(), labels.len());
    // CT and labels stay aligned voxel-for-voxel: lungs voxels are dark.
    let lungs = seneca_data::Organ::Lungs.label() as f32;
    let mut lung_hu = vec![];
    for (h, l) in hu.iter().zip(&labels) {
        if *l == lungs {
            lung_hu.push(*h);
        }
    }
    if !lung_hu.is_empty() {
        let mean: f32 = lung_hu.iter().sum::<f32>() / lung_hu.len() as f32;
        assert!(mean < -400.0, "lung voxels must be dark, mean {mean}");
    }
    let _ = std::fs::remove_file(&ct);
    let _ = std::fs::remove_file(&seg);
}

#[test]
fn fig5_style_render_roundtrip() {
    let ds = SyntheticCtOrg::new(SyntheticCtOrgConfig {
        n_patients: 1,
        slice_size: 32,
        slices_per_unit_z: 12.0,
        ..Default::default()
    });
    let vol = ds.volume(0);
    let s = preprocess(&vol.slice(vol.depth / 2), 1);
    let img = Tensor::from_vec(Shape4::new(1, 1, s.height, s.width), s.pixels.clone());
    let panels = vec![render_ct(&img), render_overlay(&img, &s.labels)];
    let (w, h, rgb) = hstack(&panels);
    assert_eq!(h, 32);
    assert_eq!(w, 32 + 2 + 32);
    let path = tmp("row.ppm");
    write_ppm(&path, w, h, &rgb).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.starts_with(format!("P6\n{w} {h}\n255\n").as_bytes()));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn xmodel_json_is_a_complete_artifact() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let net = UNet::new(
        UNetConfig { depth: 1, base_filters: 4, in_channels: 1, num_classes: 6, dropout: 0.0 },
        &mut rng,
    );
    let fg = fuse(&Graph::from_unet(&net, "artifact"));
    let calib = vec![Tensor::he_normal(Shape4::new(1, 1, 16, 16), &mut rng)];
    let (qg, _) = quantize_post_training(&fg, &calib, &PtqConfig::default());
    let xm = seneca_dpu::compile(&qg, Shape4::new(1, 1, 16, 16), DpuArch::b4096_zcu104());

    // Write to disk, reload, run functionally: identical outputs.
    let path = tmp("model.xmodel.json");
    std::fs::write(&path, xm.to_json()).unwrap();
    let loaded = seneca_dpu::XModel::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let img = &calib[0];
    let core = seneca_dpu::executor::DpuCore::new(seneca_dpu::executor::ExecMode::Functional);
    let a = core.run(&xm, &xm.quantize_input(img)).output.unwrap();
    let b = core.run(&loaded, &loaded.quantize_input(img)).output.unwrap();
    assert_eq!(a.data(), b.data());
    assert_eq!(xm.input_scale(), loaded.input_scale());
    let _ = std::fs::remove_file(&path);
}
