//! Model-selection sweep: the paper's §IV-B/§IV-C methodology.
//!
//! "We first select for each model the best configuration in terms of energy
//! efficiency and then we further consider the accuracy" — this example runs
//! that exact selection over the five Table II configurations and prints the
//! DSC·EE score of Eq. (7), ending with the winner (the 1M model, which the
//! paper names SENECA).
//!
//! ```sh
//! cargo run --release --example model_selection
//! ```

use seneca::eval::evaluate_accuracy;
use seneca::{SenecaConfig, Workflow};
use seneca_dpu::arch::DpuArch;
use seneca_dpu::runtime::{DpuRunner, RuntimeConfig};
use seneca_nn::ModelSize;
use seneca_tensor::Shape4;
use std::sync::Arc;

fn main() {
    let wf = Workflow::new(SenecaConfig::fast());
    let data = wf.prepare_data();

    println!("sweeping the five Table II configurations ...\n");
    println!(
        "{:>5} {:>9} | {:>9} {:>7} {:>7} | {:>9} {:>9}",
        "model", "params", "best-thr", "FPS", "EE", "DSC [%]", "DSC x EE"
    );

    let mut best: Option<(ModelSize, f64)> = None;
    for size in ModelSize::ALL {
        let dep = wf.deploy(size, &data);

        // Step 1 (§IV-B): pick the best thread count by energy efficiency,
        // at the paper's 256x256 DPU geometry.
        let xm256 = Arc::new(seneca_dpu::compile(
            &dep.qgraph,
            Shape4::new(1, 1, 256, 256),
            DpuArch::b4096_zcu104(),
        ));
        let (mut best_thr, mut best_ee, mut best_fps) = (1usize, 0.0f64, 0.0f64);
        for threads in [1usize, 2, 4, 8] {
            let r =
                DpuRunner::new(Arc::clone(&xm256), RuntimeConfig { threads, ..Default::default() })
                    .run_throughput(wf.config.throughput_frames, 7);
            if r.energy_efficiency() > best_ee {
                best_ee = r.energy_efficiency();
                best_thr = threads;
                best_fps = r.fps;
            }
        }

        // Step 2 (§IV-C): fold in the INT8 accuracy.
        let acc = evaluate_accuracy(&|img| dep.qgraph.predict(img), &data);
        let dsc = acc.global().mean;
        let score = dsc / 100.0 * best_ee;
        println!(
            "{:>5} {:>8.3}M | {:>9} {:>7.1} {:>7.2} | {:>9.2} {:>9.2}",
            size.label(),
            dep.unet.param_count() as f64 / 1e6,
            format!("{best_thr}-thr"),
            best_fps,
            best_ee,
            dsc,
            score
        );
        if best.is_none_or(|(_, s)| score > s) {
            best = Some((size, score));
        }
    }

    let (winner, score) = best.expect("five models evaluated");
    println!(
        "\nselected model: {winner} (DSC x EE = {score:.2}) — \
         \"from now on, this model will be referred to as SENECA\" (§IV-C)."
    );
    assert_eq!(winner, ModelSize::M1, "the sweep should reproduce the paper's choice");
}
