//! Surgery-room streaming scenario.
//!
//! The paper motivates SENECA with "a surgery scenario where we want to
//! perform the semantic segmentation of images acquired in real-time on the
//! surgery table" under a tight power envelope. This example simulates a
//! live intra-operative CT stream: slices arrive at a fixed acquisition
//! rate, the VART-style runtime segments them with 4 threads on the
//! simulated ZCU104, and we check that the accelerator sustains the stream
//! within the power budget — then show the same stream falling behind on
//! fewer threads.
//!
//! ```sh
//! cargo run --release --example surgery_stream
//! ```

use seneca::{SenecaConfig, Workflow};
use seneca_nn::ModelSize;

/// A surgical C-arm style acquisition: 25 slices per sweep, 10 sweeps.
const SLICES_PER_SWEEP: usize = 25;
const SWEEPS: usize = 10;
/// Acquisition rate the accelerator must keep up with (frames/s).
const ACQUISITION_FPS: f64 = 200.0;
/// Power available to the segmentation box on the surgical cart (W).
const POWER_BUDGET_W: f64 = 35.0;

fn main() {
    let wf = Workflow::new(SenecaConfig::fast());
    println!("training + deploying SENECA (1M) ...");
    let data = wf.prepare_data();
    let dep = wf.deploy(ModelSize::M1, &data);

    let n_frames = SLICES_PER_SWEEP * SWEEPS;
    println!("\nstreaming {n_frames} intra-operative slices at {ACQUISITION_FPS} FPS:\n");
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>12} {:>10}",
        "threads", "seg FPS", "watt", "EE", "keeps up?", "in budget?"
    );
    for threads in [1usize, 2, 4] {
        let mut runner = dep.dpu_runner.clone();
        runner.config.threads = threads;
        let rep = runner.run_throughput(n_frames, 42);
        let keeps_up = rep.fps >= ACQUISITION_FPS;
        let in_budget = rep.watt <= POWER_BUDGET_W;
        println!(
            "{:>8} {:>10.1} {:>8.2} {:>8.2} {:>12} {:>10}",
            threads,
            rep.fps,
            rep.watt,
            rep.energy_efficiency(),
            if keeps_up { "yes" } else { "NO" },
            if in_budget { "yes" } else { "NO" },
        );
    }

    // Functional spot check: segment one sweep for real and report organ
    // coverage, as the surgeon's overlay would.
    let sweep: Vec<_> = data
        .test_by_patient
        .iter()
        .flat_map(|p| p.images.iter())
        .take(SLICES_PER_SWEEP)
        .cloned()
        .collect();
    println!("\nsegmenting one sweep functionally ({} slices) ...", sweep.len());
    let t0 = std::time::Instant::now();
    let outputs = dep.dpu_runner.predict(&sweep);
    let wall = t0.elapsed();
    let mut organ_pixels = [0u64; 6];
    for labels in &outputs {
        for &l in labels {
            organ_pixels[(l as usize).min(5)] += 1;
        }
    }
    println!(
        "  host wall-clock {:.2?}; organ pixels: liver {}, bladder {}, lungs {}, kidneys {}, bones {}",
        wall, organ_pixels[1], organ_pixels[2], organ_pixels[3], organ_pixels[4], organ_pixels[5]
    );
    println!("\nnote: with <4 threads the stream falls behind — the paper's Fig. 3 in action.");
}
