//! Quickstart: the whole SENECA workflow in ~40 lines.
//!
//! Generates a small synthetic CT cohort, trains the 1M U-Net with the
//! weighted Focal Tversky loss, quantises it to INT8 with a
//! frequency-leveled calibration set, compiles it for the simulated
//! dual-core DPUCZDX8G-B4096 and reports throughput, energy efficiency and
//! segmentation quality against the FP32 "GPU" baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use seneca::eval::evaluate_accuracy;
use seneca::{SenecaConfig, Workflow};
use seneca_nn::ModelSize;

fn main() {
    // 1. Configure. `fast()` keeps this example in the seconds range;
    //    swap for `SenecaConfig::reduced()` or `::paper()` for real runs.
    let wf = Workflow::new(SenecaConfig::fast());

    // 2. Stage A: synthetic CT-ORG cohort, preprocessing, calibration set.
    println!("preparing data ...");
    let data = wf.prepare_data();
    println!(
        "  {} training slices | organ frequencies: {}",
        data.train.len(),
        data.frequencies.table_row()
    );

    // 3. Stages B-E: train, quantise, compile, deploy.
    println!("training + quantising + compiling the 1M model ...");
    let dep = wf.deploy(ModelSize::M1, &data);
    println!(
        "  xmodel: {} instructions, {:.2} MiB weights, input scale {}",
        dep.dpu_runner.xmodel.stats.n_instrs,
        dep.dpu_runner.xmodel.stats.weight_bytes as f64 / (1024.0 * 1024.0),
        dep.dpu_runner.xmodel.input_scale(),
    );

    // 4. Throughput + energy on both targets.
    let fpga = dep.dpu_runner.run_throughput(wf.config.throughput_frames, 0);
    let gpu = dep.gpu_runner.run_throughput(wf.config.throughput_frames, 0);
    println!(
        "FPGA (sim): {:8.1} FPS at {:5.2} W -> EE {:5.2}",
        fpga.fps,
        fpga.watt,
        fpga.energy_efficiency()
    );
    println!(
        "GPU  (sim): {:8.1} FPS at {:5.2} W -> EE {:5.2}",
        gpu.fps,
        gpu.watt,
        gpu.energy_efficiency()
    );
    println!(
        "speedup: {:.2}x, EE gain: {:.2}x",
        fpga.fps / gpu.fps,
        fpga.energy_efficiency() / gpu.energy_efficiency()
    );

    // 5. Accuracy: INT8 vs FP32 global Dice on the held-out patients.
    let int8 = evaluate_accuracy(&|img| dep.qgraph.predict(img), &data);
    let fp32 = evaluate_accuracy(&|img| dep.gpu_runner.predict(img), &data);
    println!("global DSC: INT8 {} | FP32 {}", int8.global().display(2), fp32.global().display(2));
}
