//! Exports a few synthetic patients as NIfTI volumes (CT-ORG's native
//! format) plus PPM slice previews, for inspection in standard viewers.
//!
//! ```sh
//! cargo run --release --example export_cohort -- [out_dir] [n_patients]
//! ```

use seneca::render::{hstack, render_ct, render_overlay, write_ppm};
use seneca_data::nifti::{write_nifti, NiftiChannel};
use seneca_data::preprocess::preprocess;
use seneca_data::{SyntheticCtOrg, SyntheticCtOrgConfig};
use seneca_tensor::{Shape4, Tensor};
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let out: PathBuf = args.next().unwrap_or_else(|| "target/seneca-cohort".into()).into();
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let ds = SyntheticCtOrg::new(SyntheticCtOrgConfig {
        n_patients: n,
        slice_size: 128,
        slices_per_unit_z: 48.0,
        ..Default::default()
    });

    for id in 0..n {
        let vol = ds.volume(id);
        let kind = ds.scan_kind(id);
        let ct = out.join(format!("patient{id:03}-ct.nii"));
        let seg = out.join(format!("patient{id:03}-seg.nii"));
        write_nifti(&ct, &vol, NiftiChannel::Intensity).expect("write CT");
        write_nifti(&seg, &vol, NiftiChannel::Labels).expect("write labels");

        // Mid-volume preview: CT | labels, preprocessed like stage A.
        let mid = preprocess(&vol.slice(vol.depth / 2), 1);
        let img = Tensor::from_vec(Shape4::new(1, 1, mid.height, mid.width), mid.pixels.clone());
        let panels = vec![render_ct(&img), render_overlay(&img, &mid.labels)];
        let (w, h, rgb) = hstack(&panels);
        let ppm = out.join(format!("patient{id:03}-preview.ppm"));
        write_ppm(&ppm, w, h, &rgb).expect("write preview");

        println!(
            "patient {id:03} ({kind:?}, {} slices): {} / {} / {}",
            vol.depth,
            ct.display(),
            seg.display(),
            ppm.display()
        );
    }
    println!("\nopen the .nii files in 3D Slicer / ITK-SNAP, or the .ppm previews anywhere.");
}
