//! Calibration-set tuning: the §III-D / Table III experiment.
//!
//! Post-training quantisation adapts to whatever the calibration set shows
//! it. Random sampling mirrors the dataset's organ imbalance, so rare organs
//! (bladder) barely influence the fix positions; the paper manually levels
//! organ frequencies instead, and warns that *over*-leveling hurts globally.
//! This example quantises the same trained model with three calibration
//! strategies and compares per-organ accuracy.
//!
//! ```sh
//! cargo run --release --example calibration_tuning
//! ```

use seneca::eval::evaluate_accuracy;
use seneca::workflow::slice_to_sample;
use seneca::{SenecaConfig, Workflow};
use seneca_data::calibration::{manual_calibration, random_calibration, PAPER_MANUAL_TARGET};
use seneca_data::dataset::SplitKind;
use seneca_data::preprocess::preprocess;
use seneca_data::volume::Organ;
use seneca_nn::graph::Graph;
use seneca_nn::ModelSize;
use seneca_quant::{fuse, quantize_post_training, PtqConfig};

fn main() {
    let wf = Workflow::new(SenecaConfig::fast());
    let data = wf.prepare_data();
    println!("training the 1M model once ...");
    let net = wf.train_model(ModelSize::M1, &data);
    let fg = fuse(&Graph::from_unet(&net, "1M"));

    // Build the slice pool the samplers draw from.
    let ds = wf.cohort();
    let factor = wf.config.downsample_factor();
    let pool: Vec<_> = ds
        .slices(SplitKind::Train, wf.config.train_stride)
        .iter()
        .map(|s| preprocess(s, factor))
        .collect();
    let n = wf.config.calibration_images;

    // Three strategies: random, the paper's manual leveling, and an
    // over-leveled uniform target (the failure mode §III-D warns about).
    let uniform = [20.0f64; 5];
    let strategies: Vec<(&str, seneca_data::calibration::CalibrationSet)> = vec![
        ("random", random_calibration(&pool, n, 1)),
        ("manual (Table III)", manual_calibration(&pool, n, PAPER_MANUAL_TARGET, 1)),
        ("over-leveled (uniform)", manual_calibration(&pool, n, uniform, 1)),
    ];

    println!(
        "\n{:<24} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>8}",
        "calibration", "liver", "bladder", "lungs", "kidneys", "bones", "global"
    );
    for (name, cal) in strategies {
        let images: Vec<_> = cal.slices.iter().map(|s| slice_to_sample(s).image).collect();
        let (qg, _) = quantize_post_training(&fg, &images, &PtqConfig::default());
        let acc = evaluate_accuracy(&|img| qg.predict(img), &data);
        let organ = |o: Organ| {
            let m = acc.organ(o);
            if m.n == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", m.mean)
            }
        };
        println!(
            "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>8.2}",
            name,
            organ(Organ::Liver),
            organ(Organ::Bladder),
            organ(Organ::Lungs),
            organ(Organ::Kidneys),
            organ(Organ::Bones),
            acc.global().mean,
        );
        println!(
            "{:<24} calibration frequencies: {}",
            "",
            Organ::TARGETS
                .iter()
                .map(|o| format!("{} {:.1}%", o.name(), cal.frequencies.of(*o)))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!(
        "\nper §III-D: manual leveling helps the small organs; pushing all the way to a \
         uniform distribution distorts the activation ranges the big organs rely on."
    );
}
