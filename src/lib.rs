//! Workspace-root helper crate for the SENECA reproduction.
//!
//! This crate exists to host the runnable `examples/` and the cross-crate
//! integration tests in `tests/`. It re-exports the public façade crate.
pub use seneca;
